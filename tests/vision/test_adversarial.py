"""Tests for the adversarial-patch attack and smoothing mitigation."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.vision import TinyYolo, YoloConfig, YoloTrainer
from repro.vision.adversarial import (
    AttackConfig,
    SmoothedDetector,
    attack_recall,
    craft_suppression_patch,
)
from tests.vision.test_yolo import synthetic_dataset


@pytest.fixture(scope="module")
def trained():
    cfg = YoloConfig(input_w=24, input_h=24, channels=(8, 8, 8, 8))
    model = TinyYolo(cfg, seed=0)
    ds = synthetic_dataset(32)
    YoloTrainer(model, lr=3e-3, batch_size=8).fit(ds, epochs=40)
    return model, ds


class TestConfig:
    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            AttackConfig(steps=0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            AttackConfig(epsilon=1.5)


class TestPatchCrafting:
    def test_perturbation_confined_to_patch(self, trained):
        model, ds = trained
        x = ds.images[0]
        target = ds.labels[0][0][1]
        patched = craft_suppression_patch(model, x, target,
                                          AttackConfig(steps=5))
        diff = np.abs(patched - x).sum(axis=0)
        changed_ys, changed_xs = np.where(diff > 1e-6)
        assert changed_ys.size > 0, "the attack must actually perturb"
        # Allow 1px slack: the patch mask snaps to the pixel grid.
        grown = target.inflated(
            max(2.0, min(target.w, target.h) * 0.2) * 1.5).inflated(1.0)
        for y, x_ in zip(changed_ys, changed_xs):
            assert grown.contains_point(float(x_), float(y)), \
                "perturbation escaped the patch region"

    def test_pixels_stay_in_unit_range(self, trained):
        model, ds = trained
        patched = craft_suppression_patch(model, ds.images[0],
                                          ds.labels[0][0][1],
                                          AttackConfig(steps=8))
        assert patched.min() >= 0.0 and patched.max() <= 1.0

    def test_attack_reduces_objectness(self, trained):
        model, ds = trained
        x = ds.images[0]
        from repro.vision.nn.losses import sigmoid
        before = sigmoid(model.predict_raw(x[None])[0, 0]).sum()
        patched = craft_suppression_patch(model, x, ds.labels[0][0][1],
                                          AttackConfig(steps=20))
        after = sigmoid(model.predict_raw(patched[None])[0, 0]).sum()
        assert after < before


class TestAttackRecall:
    def test_whitebox_attack_hurts_recall(self, trained):
        model, ds = trained
        small = type(ds)(images=ds.images[:10], labels=ds.labels[:10])
        res = attack_recall(model, small, AttackConfig(steps=20))
        assert res["clean_recall"] > 0.6
        assert res["attacked_recall"] < res["clean_recall"]

    def test_smoothing_mitigates(self, trained):
        model, ds = trained
        small = type(ds)(images=ds.images[:10], labels=ds.labels[:10])
        plain = attack_recall(model, small, AttackConfig(steps=20))
        smoothed = SmoothedDetector(model, n_samples=5, noise_sigma=0.08,
                                    seed=1)
        defended = attack_recall(model, small, AttackConfig(steps=20),
                                 detector=smoothed)
        assert defended["attacked_recall"] >= plain["attacked_recall"]


class TestSmoothedDetector:
    def test_rejects_zero_samples(self, trained):
        model, _ = trained
        with pytest.raises(ValueError):
            SmoothedDetector(model, n_samples=0)

    def test_clean_behaviour_preserved(self, trained):
        model, ds = trained
        smoothed = SmoothedDetector(model, n_samples=5, noise_sigma=0.04)
        raw_hits = sum(bool(model.detect_batch(ds.images[i:i+1], 0.4)[0])
                       for i in range(8))
        smooth_hits = sum(bool(smoothed.detect_batch(ds.images[i:i+1], 0.4)[0])
                          for i in range(8))
        assert smooth_hits >= raw_hits - 2
