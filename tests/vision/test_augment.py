"""Tests for training-time augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect
from repro.vision.augment import AugmentConfig, augment_batch


def batch(n=4, h=32, w=24, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.random((n, 3, h, w)).astype(np.float32)
    labels = [[(1, Rect(5, 6, 8, 8))] for _ in range(n)]
    return images, labels


class TestConfig:
    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            AugmentConfig(max_shift_px=-1)

    def test_rejects_bad_flip_prob(self):
        with pytest.raises(ValueError):
            AugmentConfig(hflip_prob=1.5)


class TestAugmentBatch:
    def test_output_shapes_preserved(self):
        images, labels = batch()
        out, labs = augment_batch(images, labels, np.random.default_rng(0))
        assert out.shape == images.shape
        assert len(labs) == len(labels)

    def test_inputs_not_mutated(self):
        images, labels = batch()
        before = images.copy()
        augment_batch(images, labels, np.random.default_rng(0))
        assert np.array_equal(images, before)

    def test_values_stay_in_unit_range(self):
        images, labels = batch()
        out, _ = augment_batch(images, labels, np.random.default_rng(1),
                               AugmentConfig(brightness=0.5, noise_sigma=0.1))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_labels_follow_translation(self):
        images, labels = batch(n=1)
        cfg = AugmentConfig(brightness=0, contrast=0, noise_sigma=0,
                            max_shift_px=3)
        # Run until a nonzero shift happens; boxes must stay on-image
        # and preserve size (away from borders).
        rng = np.random.default_rng(2)
        out, labs = augment_batch(images, labels, rng, cfg)
        cls, rect = labs[0][0]
        assert cls == 1
        assert 0 <= rect.left and rect.right <= 24
        assert 0 <= rect.top and rect.bottom <= 32
        assert rect.w >= 5  # fully-interior box only clipped by <= shift

    def test_pure_photometric_keeps_labels(self):
        images, labels = batch()
        cfg = AugmentConfig(max_shift_px=0, hflip_prob=0.0)
        _, labs = augment_batch(images, labels, np.random.default_rng(3), cfg)
        assert labs == labels

    def test_hflip_mirrors_boxes(self):
        images, labels = batch(n=1)
        cfg = AugmentConfig(brightness=0, contrast=0, noise_sigma=0,
                            max_shift_px=0, hflip_prob=1.0)
        out, labs = augment_batch(images, labels, np.random.default_rng(0), cfg)
        _, rect = labs[0][0]
        orig = labels[0][0][1]
        assert rect.right == pytest.approx(24 - orig.left)
        assert rect.y == orig.y
        assert np.array_equal(out[0, :, :, ::-1], images[0])

    def test_mismatched_lengths_rejected(self):
        images, labels = batch()
        with pytest.raises(ValueError):
            augment_batch(images, labels[:-1], np.random.default_rng(0))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_boxes_always_inside_image(self, seed):
        images, labels = batch(seed=seed)
        out, labs = augment_batch(images, labels,
                                  np.random.default_rng(seed),
                                  AugmentConfig(max_shift_px=6))
        for per_image in labs:
            for _, rect in per_image:
                assert rect.left >= 0 and rect.top >= 0
                assert rect.right <= 24 and rect.bottom <= 32


class TestTrainerIntegration:
    def test_training_with_augmentation_learns(self):
        from tests.vision.test_yolo import synthetic_dataset
        from repro.vision import TinyYolo, YoloConfig, YoloTrainer
        cfg = YoloConfig(input_w=24, input_h=24, channels=(8, 8, 8, 8))
        model = TinyYolo(cfg, seed=0)
        trainer = YoloTrainer(model, lr=3e-3, batch_size=8,
                              augment=AugmentConfig(max_shift_px=1))
        ds = synthetic_dataset(16)
        history = trainer.fit(ds, epochs=10)
        assert history.losses[-1] < history.losses[0]
