"""Unit tests for the fast-kernel helpers and the calibrated int8 path.

The contracts pinned here back the determinism story in
:mod:`repro.vision.nn.infer`:

- int8 GEMM partial sums fit in float32's 24-bit integer window, so
  *any* row tiling is exact — bit-identical to an int64 reference;
- quantization helpers produce symmetric codes with per-channel scales
  whose round-trip error is bounded by half a step;
- the per-channel conv-weight scheme in ``porting._quantize`` beats
  the old per-tensor scheme by an order of magnitude in the presence
  of an outlier channel (the regression this PR pins);
- the int8 inference plan is bit-identical across batch compositions
  and stays within a bounded epsilon of the float plan.
"""

import numpy as np
import pytest

from repro.vision.nn import DeployConfig
from repro.vision.nn.kernels import (
    INT8_EXACT_MAX_K,
    int8_accumulation_exact,
    int8_gemm,
    quantize_symmetric,
    quantize_to_float,
    tiled_matmul,
)
from repro.vision.porting import _quantize
from repro.vision.yolo import TinyYolo, YoloConfig

SMALL = YoloConfig(input_w=24, input_h=24, channels=(8, 8, 8, 8))


def _int8_valued(rng, shape):
    """Float32 array whose values are exact signed-8-bit integers."""
    return rng.integers(-127, 128, size=shape).astype(np.float32)


class TestTiledMatmul:
    @pytest.mark.parametrize("m,k,n", [(9216, 27, 16), (2304, 144, 24),
                                       (576, 216, 48), (144, 432, 48)])
    def test_int_valued_tiling_is_exact(self, m, k, n):
        # Integer-valued operands with K <= 1040 accumulate exactly, so
        # every tile size must agree bitwise with the one-shot product
        # (these are the TinyYolo conv GEMM shapes).
        rng = np.random.default_rng(0)
        a = _int8_valued(rng, (m, k))
        b = _int8_valued(rng, (k, n))
        ref = np.matmul(a, b)
        for tile_rows in (64, 100, 2048, m, m + 7):
            assert np.array_equal(tiled_matmul(a, b, tile_rows=tile_rows), ref)

    def test_whole_matrix_tile_is_trivially_identical_for_floats(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, (300, 72)).astype(np.float32)
        b = rng.normal(0, 1, (72, 8)).astype(np.float32)
        assert np.array_equal(tiled_matmul(a, b, tile_rows=300),
                              np.matmul(a, b))

    def test_float_tiling_stays_close(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, (500, 64)).astype(np.float32)
        b = rng.normal(0, 1, (64, 16)).astype(np.float32)
        assert np.allclose(tiled_matmul(a, b, tile_rows=128),
                           np.matmul(a, b), atol=1e-5)

    def test_out_buffer_is_used(self):
        rng = np.random.default_rng(3)
        a = _int8_valued(rng, (100, 30))
        b = _int8_valued(rng, (30, 5))
        out = np.empty((100, 5), dtype=np.float32)
        result = tiled_matmul(a, b, out=out, tile_rows=32)
        assert result is out

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            tiled_matmul(np.zeros((2, 3), np.float32),
                         np.zeros((4, 5), np.float32))


class TestQuantize:
    def test_per_tensor_codes_and_roundtrip_bound(self):
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.1, (64, 32)).astype(np.float32)
        codes, scale = quantize_symmetric(w)
        assert codes.dtype == np.int8
        assert np.abs(codes.astype(np.int32)).max() <= 127
        assert np.isclose(scale, np.abs(w).max() / 127)
        err = np.abs(codes.astype(np.float32) * scale - w).max()
        assert err <= scale / 2 + 1e-7

    def test_per_channel_scales(self):
        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.1, (72, 16)).astype(np.float32)
        codes, scale = quantize_symmetric(w, axis=1)
        assert scale.shape == (16,)
        for c in range(16):
            assert np.isclose(scale[c], np.abs(w[:, c]).max() / 127)

    def test_zero_channel_gets_unit_scale(self):
        w = np.zeros((8, 4), dtype=np.float32)
        w[:, 0] = 1.0
        codes, scale = quantize_symmetric(w, axis=1)
        assert scale[1] == 1.0 and np.all(codes[:, 1] == 0)

    def test_quantize_to_float_clips_and_rounds(self):
        x = np.array([[-10.0, 0.24, 0.26, 10.0]], dtype=np.float32)
        q = quantize_to_float(x, np.float32(0.5))
        assert q.tolist() == [[-20.0, 0.0, 1.0, 20.0]]
        assert np.abs(q).max() <= 127


class TestInt8Gemm:
    def test_matches_int64_reference_exactly(self):
        rng = np.random.default_rng(0)
        qa = _int8_valued(rng, (200, 432))
        qb = _int8_valued(rng, (432, 48))
        ref = np.matmul(qa.astype(np.int64), qb.astype(np.int64))
        out = int8_gemm(qa, qb, tile_rows=64)
        assert np.array_equal(out.astype(np.int64), ref)

    def test_k_guard(self):
        assert int8_accumulation_exact(INT8_EXACT_MAX_K)
        assert not int8_accumulation_exact(INT8_EXACT_MAX_K + 1)
        k = INT8_EXACT_MAX_K + 1
        with pytest.raises(ValueError):
            int8_gemm(np.zeros((4, k), np.float32),
                      np.zeros((k, 2), np.float32))


class TestPerChannelPortQuantize:
    def test_outlier_channel_no_longer_poisons_the_rest(self):
        # The regression this PR pins: per-channel conv-weight scales
        # must beat the old per-tensor scheme by >=10x max-abs error on
        # the non-outlier channels.
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.02, (16, 8, 3, 3)).astype(np.float32)
        w[0] *= 50.0  # one hot filter
        per_channel = _quantize(w, "int8")
        codes, scale = quantize_symmetric(w)  # the old per-tensor scheme
        per_tensor = codes.astype(np.float32) * scale
        err_pc = np.abs(per_channel[1:] - w[1:]).max()
        err_pt = np.abs(per_tensor[1:] - w[1:]).max()
        assert err_pc < err_pt / 10

    def test_bias_vectors_keep_per_tensor_scale(self):
        b = np.array([0.5, -0.25, 0.125], dtype=np.float32)
        q = _quantize(b, "int8")
        assert q.shape == b.shape
        assert np.abs(q - b).max() <= np.abs(b).max() / 127 / 2 + 1e-7


class TestInt8Plan:
    @pytest.fixture(scope="class")
    def model(self):
        return TinyYolo(SMALL, seed=0,
                        deploy=DeployConfig(precision="int8", gemm="tiled"))

    @pytest.fixture(scope="class")
    def x(self):
        return np.random.default_rng(5).random((6, 3, 24, 24),
                                               dtype=np.float32)

    def test_batched_bit_identical_to_per_image(self, model, x):
        # Exact integer accumulation makes the int8 path immune to the
        # shape-dependent BLAS effects the float path must respect.
        plan = model.inference_plan()
        batched = plan.forward(x)
        singles = np.concatenate([plan.forward(x[i:i + 1])
                                  for i in range(len(x))])
        assert np.array_equal(batched, singles)

    def test_bounded_epsilon_vs_float_plan(self, model, x):
        int8_out = model.inference_plan().forward(x)
        float_model = TinyYolo(SMALL, seed=0)
        float_out = float_model.inference_plan().forward(x)
        assert int8_out.shape == float_out.shape
        err = np.abs(int8_out - float_out).max()
        scale = np.abs(float_out).max()
        assert err <= 0.05 * scale + 0.05, f"int8 drifted: max err {err}"

    def test_calibrate_requires_int8_plan(self):
        plan = TinyYolo(SMALL, seed=0).inference_plan()
        with pytest.raises(ValueError):
            plan.calibrate_int8(np.zeros((1, 3, 24, 24), np.float32))

    def test_explicit_calibration_roundtrip(self, x):
        model = TinyYolo(SMALL, seed=0,
                         deploy=DeployConfig(precision="int8"))
        plan = model.inference_plan()
        plan.calibrate_int8(x[:2])
        assert plan.is_calibrated
        out = plan.forward(x)
        assert out.shape[0] == len(x)
