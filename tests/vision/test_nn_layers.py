"""Gradient checks and behaviour tests for the NN library."""

import numpy as np
import pytest

from repro.vision.nn import (
    Adam,
    BatchNorm2D,
    Conv2D,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2D,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    check_layer_gradients,
)

RNG = np.random.default_rng(42)
# Layers run in float32; central differences at eps=1e-3 carry ~1e-3
# noise.  Real backprop bugs produce errors of order 1, so 1e-2 is
# still a sharp discriminator.
TOL = 1e-2


def rand(*shape):
    return RNG.normal(0, 1, shape).astype(np.float32)


class TestGradients:
    """Numerical gradient checks — the backbone of backprop trust."""

    def test_conv2d(self):
        layer = Conv2D(2, 3, kernel=3, stride=1, rng=np.random.default_rng(1))
        errs = check_layer_gradients(layer, rand(2, 2, 6, 6))
        assert max(errs.values()) < TOL, errs

    def test_conv2d_stride2(self):
        layer = Conv2D(2, 2, kernel=3, stride=2, pad=1,
                       rng=np.random.default_rng(2))
        errs = check_layer_gradients(layer, rand(1, 2, 8, 8))
        assert max(errs.values()) < TOL, errs

    def test_conv2d_1x1(self):
        layer = Conv2D(3, 4, kernel=1, pad=0, rng=np.random.default_rng(3))
        errs = check_layer_gradients(layer, rand(2, 3, 5, 5))
        assert max(errs.values()) < TOL, errs

    def test_linear(self):
        layer = Linear(6, 4, rng=np.random.default_rng(4))
        errs = check_layer_gradients(layer, rand(3, 6))
        assert max(errs.values()) < TOL, errs

    def test_batchnorm(self):
        layer = BatchNorm2D(3)
        errs = check_layer_gradients(layer, rand(4, 3, 4, 4))
        assert max(errs.values()) < 1.5e-2, errs

    def test_maxpool(self):
        layer = MaxPool2D(2)
        # Spread values so no pooling window has a near-tie: max-pool is
        # non-differentiable at ties and finite differences flip there.
        x = rand(2, 2, 6, 6) * 5.0
        errs = check_layer_gradients(layer, x)
        assert errs["input"] < TOL

    def test_leaky_relu(self):
        layer = LeakyReLU(0.1)
        errs = check_layer_gradients(layer, rand(2, 3, 4, 4) + 0.05)
        assert errs["input"] < TOL

    def test_sigmoid(self):
        errs = check_layer_gradients(Sigmoid(), rand(2, 5))
        assert errs["input"] < TOL

    def test_sequential_stack(self):
        model = Sequential([
            Conv2D(1, 2, kernel=3, rng=np.random.default_rng(5)),
            BatchNorm2D(2),
            LeakyReLU(0.1),
            MaxPool2D(2),
            Flatten(),
            Linear(2 * 3 * 3, 4, rng=np.random.default_rng(6)),
        ])
        errs = check_layer_gradients(model, rand(2, 1, 6, 6))
        assert max(errs.values()) < 1.5e-2, errs


class TestShapes:
    def test_conv_same_padding(self):
        layer = Conv2D(3, 8, kernel=3)
        assert layer.forward(rand(2, 3, 16, 16)).shape == (2, 8, 16, 16)

    def test_conv_stride_halves(self):
        layer = Conv2D(3, 8, kernel=3, stride=2, pad=1)
        assert layer.forward(rand(1, 3, 16, 16)).shape == (1, 8, 8, 8)

    def test_maxpool_halves(self):
        assert MaxPool2D(2).forward(rand(1, 4, 8, 8)).shape == (1, 4, 4, 4)

    def test_maxpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(rand(1, 1, 7, 8))

    def test_flatten(self):
        assert Flatten().forward(rand(3, 2, 4, 4)).shape == (3, 32)

    def test_backward_without_training_raises(self):
        layer = Conv2D(1, 1)
        layer.forward(rand(1, 1, 4, 4), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(rand(1, 1, 4, 4))


class TestBatchNormSemantics:
    def test_training_normalizes_batch(self):
        bn = BatchNorm2D(2)
        x = rand(8, 2, 4, 4) * 5 + 3
        out = bn.forward(x, training=True)
        assert abs(out.mean()) < 0.1
        assert abs(out.std() - 1.0) < 0.1

    def test_running_stats_converge(self):
        bn = BatchNorm2D(1, momentum=0.5)
        x = rand(16, 1, 4, 4) * 2 + 7
        for _ in range(20):
            bn.forward(x, training=True)
        assert bn.running_mean[0] == pytest.approx(7.0, abs=0.5)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2D(1, momentum=0.0)
        x = rand(16, 1, 4, 4) * 2 + 7
        bn.forward(x, training=True)  # momentum 0 -> running = batch stats
        out = bn.forward(x, training=False)
        assert abs(out.mean()) < 0.05


class TestMaxPoolSemantics:
    def test_selects_maximum(self):
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        x[0, 0, 1, 1] = 5.0
        out = MaxPool2D(2).forward(x)
        assert out[0, 0, 0, 0] == 5.0

    def test_tie_gradient_goes_to_one_input(self):
        pool = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        pool.forward(x, training=True)
        dx = pool.backward(np.ones((1, 1, 1, 1), dtype=np.float32))
        assert dx.sum() == pytest.approx(1.0)


class TestOptimizers:
    def _quadratic_params(self):
        from repro.vision.nn.layers import Parameter
        return [Parameter(np.array([5.0, -3.0], dtype=np.float32))]

    def test_sgd_descends_quadratic(self):
        params = self._quadratic_params()
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            params[0].grad += 2 * params[0].value  # d/dx of x^2
            opt.step()
        assert np.abs(params[0].value).max() < 1e-3

    def test_sgd_momentum_faster_than_plain(self):
        def run(momentum):
            params = self._quadratic_params()
            opt = SGD(params, lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                params[0].grad += 2 * params[0].value
                opt.step()
            return float(np.abs(params[0].value).max())

        assert run(0.9) < run(0.0)

    def test_adam_descends_quadratic(self):
        params = self._quadratic_params()
        opt = Adam(params, lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            params[0].grad += 2 * params[0].value
            opt.step()
        assert np.abs(params[0].value).max() < 1e-2

    def test_weight_decay_shrinks_weights(self):
        params = self._quadratic_params()
        opt = SGD(params, lr=0.1, weight_decay=0.5)
        for _ in range(100):
            opt.zero_grad()  # no task gradient, only decay
            opt.step()
        assert np.abs(params[0].value).max() < 0.1

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam(self._quadratic_params(), lr=0)


class TestEndToEndLearning:
    def test_tiny_cnn_learns_xor_of_quadrants(self):
        """A small conv net must fit a simple synthetic image task."""
        rng = np.random.default_rng(0)
        n = 64
        x = rng.normal(0, 0.3, (n, 1, 8, 8)).astype(np.float32)
        y = np.zeros((n,), dtype=int)
        for i in range(n):
            if i % 2 == 0:
                x[i, 0, :4, :4] += 2.0  # bright top-left => class 1
                y[i] = 1
        model = Sequential([
            Conv2D(1, 4, kernel=3, rng=rng),
            LeakyReLU(0.1),
            MaxPool2D(2),
            Flatten(),
            Linear(4 * 4 * 4, 2, rng=rng),
        ])
        from repro.vision.nn import softmax_cross_entropy
        opt = Adam(model.parameters(), lr=5e-3)
        for _ in range(60):
            opt.zero_grad()
            logits = model.forward(x, training=True)
            loss, grad = softmax_cross_entropy(logits, y)
            model.backward(grad)
            opt.step()
        preds = model.forward(x).argmax(axis=1)
        assert (preds == y).mean() > 0.95
