"""Property-based tests for box refinement invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Rect, iou
from repro.imaging import Canvas
from repro.imaging.color import Color, PALETTE
from repro.vision.refine import refine_detection_box, snap_box_to_region

coords = st.floats(min_value=5, max_value=300, allow_nan=False)
sizes = st.floats(min_value=8, max_value=80, allow_nan=False)
channel = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def scene(x, y, w, h, widget_color, bg_color):
    canvas = Canvas(360, 640, background=bg_color)
    canvas.fill_rect(Rect(x, y, w, h), widget_color)
    return canvas.to_array()


class TestRefinementInvariants:
    @given(x=coords, y=coords, w=sizes, h=sizes,
           dx=st.floats(-0.12, 0.12), dy=st.floats(-0.12, 0.12))
    @settings(max_examples=25, deadline=None)
    def test_recovers_solid_widgets(self, x, y, w, h, dx, dy):
        """A solid high-contrast rect is recovered from a jittered box."""
        x, y, w, h = round(x), round(y), round(w), round(h)
        img = scene(x, y, w, h, PALETTE["blue"], PALETTE["white"])
        # The canvas clips widgets at the screen edge; refinement can
        # only recover the visible part, so the truth box must match.
        truth = Rect(x, y, w, h).clipped_to(Rect(0, 0, 360, 640))
        pred = Rect.from_center(truth.center[0] + dx * w,
                                truth.center[1] + dy * h, w * 1.1, h * 1.1)
        refined = refine_detection_box(img, pred)
        assert iou(refined, truth) > 0.85

    @given(x=coords, y=coords, w=sizes, h=sizes)
    @settings(max_examples=25, deadline=None)
    def test_result_always_valid_rect(self, x, y, w, h):
        """Refinement never returns degenerate or out-of-band boxes."""
        rng = np.random.default_rng(int(x * 7 + y) % 1000)
        img = rng.random((640, 360, 3)).astype(np.float32)
        pred = Rect(x, y, w, h)
        refined = refine_detection_box(img, pred)
        assert refined.w >= 0 and refined.h >= 0
        # Stays in the vicinity of the prediction (never teleports).
        assert refined.center_distance(pred) < max(w, h) * 3 + 20

    @given(r=channel, g=channel, b=channel)
    @settings(max_examples=20, deadline=None)
    def test_flat_image_never_moves_box(self, r, g, b):
        img = np.full((200, 200, 3), (r, g, b), dtype=np.float32)
        pred = Rect(80, 80, 30, 30)
        assert snap_box_to_region(img, pred) == pred

    @given(alpha=st.floats(min_value=0.5, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_translucency_tolerated_above_half(self, alpha):
        """Widgets composited at alpha >= 0.5 still snap correctly."""
        canvas = Canvas(360, 640, background=PALETTE["white"])
        truth = Rect(100, 100, 28, 28)
        canvas.fill_rect(truth, PALETTE["dark_gray"], alpha=alpha)
        img = canvas.to_array()
        pred = truth.inflated(4).translated(2, -2)
        refined = refine_detection_box(img, pred)
        assert iou(refined, truth) > 0.8
