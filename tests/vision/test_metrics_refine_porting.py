"""Tests for detection metrics, box refinement, and the mobile port."""

import numpy as np
import pytest

from repro.geometry import Rect, ScoredBox
from repro.imaging import Canvas
from repro.imaging.color import PALETTE
from repro.vision import (
    DetectionEvaluator,
    MobilePort,
    PortConfig,
    ScreenConfusion,
    TinyYolo,
    YoloConfig,
    port_model,
)
from repro.vision.metrics import ClassMetrics
from repro.vision.refine import snap_box_to_edges, snap_box_to_region


def det(x, y, w, h, label="UPO", score=0.9):
    return ScoredBox(rect=Rect(x, y, w, h), label=label, score=score)


class TestClassMetrics:
    def test_precision_recall_f1(self):
        m = ClassMetrics(tp=8, fp=2, fn=4)
        assert m.precision == pytest.approx(0.8)
        assert m.recall == pytest.approx(8 / 12)
        assert m.f1 == pytest.approx(16 / 22)

    def test_zero_division_guards(self):
        m = ClassMetrics()
        assert m.precision == 0.0 and m.recall == 0.0 and m.f1 == 0.0

    def test_merge(self):
        a, b = ClassMetrics(1, 2, 3), ClassMetrics(4, 5, 6)
        merged = a.merge(b)
        assert (merged.tp, merged.fp, merged.fn) == (5, 7, 9)


class TestDetectionEvaluator:
    def test_exact_match_is_tp(self):
        ev = DetectionEvaluator(0.9)
        ev.add_image([det(10, 10, 30, 30)], [("UPO", Rect(10, 10, 30, 30))])
        r = ev.result()
        assert r.per_class["UPO"].tp == 1
        assert r.row("UPO") == (1.0, 1.0, 1.0)

    def test_loose_match_below_strict_iou_is_fp_and_fn(self):
        ev = DetectionEvaluator(0.9)
        ev.add_image([det(10, 10, 30, 30)], [("UPO", Rect(14, 14, 30, 30))])
        m = ev.result().per_class["UPO"]
        assert m.tp == 0 and m.fp == 1 and m.fn == 1

    def test_wrong_class_never_matches(self):
        ev = DetectionEvaluator(0.9)
        ev.add_image([det(10, 10, 30, 30, label="AGO")],
                     [("UPO", Rect(10, 10, 30, 30))])
        r = ev.result()
        assert r.per_class["AGO"].fp == 1
        assert r.per_class["UPO"].fn == 1

    def test_overall_pools_classes(self):
        ev = DetectionEvaluator(0.9)
        ev.add_image(
            [det(10, 10, 30, 30, "AGO"), det(100, 100, 20, 20, "UPO")],
            [("AGO", Rect(10, 10, 30, 30)), ("UPO", Rect(100, 100, 20, 20))],
        )
        assert ev.result().overall.tp == 2

    def test_duplicate_detections_one_tp_one_fp(self):
        ev = DetectionEvaluator(0.9)
        ev.add_image([det(10, 10, 30, 30, score=0.9),
                      det(10, 10, 30, 30, score=0.5)],
                     [("UPO", Rect(10, 10, 30, 30))])
        m = ev.result().per_class["UPO"]
        assert m.tp == 1 and m.fp == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DetectionEvaluator(iou_threshold=0.0)

    def test_add_images_bulk(self):
        ev = DetectionEvaluator(0.9)
        preds = [[det(0, 0, 10, 10)], []]
        truths = [[("UPO", Rect(0, 0, 10, 10))], [("AGO", Rect(5, 5, 20, 20))]]
        ev.add_images(preds, truths)
        r = ev.result()
        assert r.per_class["UPO"].tp == 1
        assert r.per_class["AGO"].fn == 1


class TestScreenConfusion:
    def test_matrix_layout(self):
        sc = ScreenConfusion()
        sc.add_screen(labeled_aui=True, predicted_aui=True)
        sc.add_screen(labeled_aui=True, predicted_aui=False)
        sc.add_screen(labeled_aui=False, predicted_aui=True)
        sc.add_screen(labeled_aui=False, predicted_aui=False)
        m = sc.as_matrix()
        assert m["AUI"]["AUI"] == 1 and m["AUI"]["Non-AUI"] == 1
        assert m["Non-AUI"]["AUI"] == 1 and m["Non-AUI"]["Non-AUI"] == 1
        assert sc.precision == 0.5 and sc.recall == 0.5


class TestRefinement:
    def _button_scene(self, x=100, y=200, w=80, h=36):
        canvas = Canvas(360, 640, background=PALETTE["white"])
        canvas.fill_rect(Rect(x, y, w, h), PALETTE["blue"])
        return canvas.to_array(), Rect(x, y, w, h)

    def test_region_snap_recovers_exact_box(self):
        img, truth = self._button_scene()
        noisy = Rect(truth.x - 6, truth.y + 4, truth.w + 10, truth.h - 6)
        from repro.geometry import iou
        refined = snap_box_to_region(img, noisy)
        assert iou(refined, truth) > 0.95

    def test_region_snap_keeps_box_on_flat_image(self):
        img = np.full((100, 100, 3), 0.5, dtype=np.float32)
        rect = Rect(30, 30, 20, 20)
        assert snap_box_to_region(img, rect) == rect

    def test_region_snap_rejects_background_bleed(self):
        # Box predicted on empty background away from any widget.
        img, _ = self._button_scene()
        rect = Rect(250, 500, 30, 30)
        refined = snap_box_to_region(img, rect)
        assert refined == rect  # nothing to snap to; box unchanged

    def test_region_snap_handles_translucent_widget(self):
        canvas = Canvas(360, 640, background=PALETTE["white"])
        truth = Rect(300, 40, 24, 24)
        canvas.fill_rect(truth, PALETTE["dark_gray"], alpha=0.5)
        img = canvas.to_array()
        noisy = Rect(truth.x - 4, truth.y - 3, truth.w + 6, truth.h + 5)
        from repro.geometry import iou
        assert iou(snap_box_to_region(img, noisy), truth) > 0.9

    def test_edge_snap_improves_box(self):
        img, truth = self._button_scene()
        noisy = Rect(truth.x - 5, truth.y + 3, truth.w + 8, truth.h - 4)
        from repro.geometry import iou
        refined = snap_box_to_edges(img, noisy)
        assert iou(refined, truth) >= iou(noisy, truth)

    def test_degenerate_rect_returned_unchanged(self):
        img = np.zeros((50, 50, 3), dtype=np.float32)
        rect = Rect(10, 10, 1, 1)
        assert snap_box_to_region(img, rect) == rect


class TestPorting:
    @pytest.fixture(scope="class")
    def trained(self):
        from tests.vision.test_yolo import synthetic_dataset
        from repro.vision import YoloTrainer
        cfg = YoloConfig(input_w=24, input_h=24, channels=(8, 8, 8, 8))
        model = TinyYolo(cfg, seed=0)
        YoloTrainer(model, lr=3e-3, batch_size=8).fit(synthetic_dataset(16), epochs=6)
        return model

    def test_bn_folding_preserves_outputs(self, trained):
        ported = port_model(trained, PortConfig(quantization="none"))
        x = np.random.default_rng(0).normal(0, 1, (2, 3, 24, 24)).astype(np.float32)
        a = trained.predict_raw(x)
        b = ported.model.predict_raw(x)
        assert np.allclose(a, b, atol=1e-3)

    def test_folded_graph_has_no_batchnorm(self, trained):
        from repro.vision.nn import BatchNorm2D
        ported = port_model(trained)
        assert not any(isinstance(l, BatchNorm2D)
                       for l in ported.model.backbone.layers)

    def test_fp16_outputs_close(self, trained):
        ported = port_model(trained, PortConfig(quantization="fp16"))
        x = np.random.default_rng(1).normal(0, 1, (2, 3, 24, 24)).astype(np.float32)
        a = trained.predict_raw(x)
        b = ported.model.predict_raw(x)
        assert np.abs(a - b).max() < 0.1

    def test_int8_smaller_than_fp16(self, trained):
        p8 = port_model(trained, PortConfig(quantization="int8"))
        p16 = port_model(trained, PortConfig(quantization="fp16"))
        assert p8.model_size_bytes() < p16.model_size_bytes()

    def test_port_does_not_mutate_source(self, trained):
        before = [w.copy() for w in trained.get_weights()]
        port_model(trained, PortConfig(quantization="int8"))
        after = trained.get_weights()
        assert all(np.array_equal(a, b) for a, b in zip(before, after))

    def test_ported_inference_faster(self, trained):
        ported = port_model(trained)
        assert ported.inference_time_ms() < 38.0

    def test_rejects_unknown_quantization(self):
        with pytest.raises(ValueError):
            PortConfig(quantization="fp8")


class TestPrecisionRecallCurve:
    def test_sweep_shapes_and_monotonicity(self):
        from repro.vision.metrics import precision_recall_curve
        truth = [("UPO", Rect(10, 10, 30, 30))]

        def detect_fn(image, thr):
            dets = [det(10, 10, 30, 30, score=0.9)]
            if thr <= 0.4:  # low thresholds admit a false positive
                dets.append(det(200, 200, 30, 30, score=0.45))
            return [d for d in dets if d.score >= thr]

        curve = precision_recall_curve(detect_fn, [None], [truth],
                                       thresholds=(0.2, 0.6, 0.95))
        assert [c[0] for c in curve] == [0.2, 0.6, 0.95]
        # Low threshold: P=0.5 R=1; mid: P=1 R=1; high: nothing detected.
        assert curve[0][1] == pytest.approx(0.5)
        assert curve[1] == (0.6, 1.0, 1.0)
        assert curve[2][2] == 0.0
