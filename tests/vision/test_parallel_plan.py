"""Multicore plan executor: bit-identical to sequential, any workers.

The scheme (mirroring ``repro.bench.parallel``): chunk boundaries are
a pure function of the batch size and the deploy config, chunks land on
group boundaries so group composition matches the sequential walk, and
the merge is ordered concatenation — no arithmetic, no races.
"""

import numpy as np
import pytest

from repro.vision.nn import DeployConfig
from repro.vision.nn.parallel import ParallelPlanExecutor
from repro.vision.yolo import TinyYolo, YoloConfig

SMALL = YoloConfig(input_w=24, input_h=24, channels=(8, 8, 8, 8))


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(3).random((6, 3, 24, 24), dtype=np.float32)


def _deploy(workers, **kw):
    return DeployConfig(workers=workers, **kw)


@pytest.mark.parametrize("deploy_kw", [
    {},                                        # fp32, per-image GEMM
    {"gemm": "tiled", "images_per_tile": 2},   # fp32, grouped GEMM
    {"precision": "int8", "gemm": "tiled", "images_per_tile": 2},
], ids=["fp32_per_image", "fp32_tiled", "int8_tiled"])
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_bit_identical_to_sequential(x, deploy_kw, workers):
    sequential = TinyYolo(SMALL, seed=0, deploy=_deploy(1, **deploy_kw))
    parallel = TinyYolo(SMALL, seed=0, deploy=_deploy(workers, **deploy_kw))
    try:
        ref = sequential.inference_plan().forward(x)
        out = parallel.inference_plan().forward(x)
        assert np.array_equal(out, ref)
    finally:
        parallel.inference_plan().close()


def test_single_image_batch_stays_inline(x):
    # A batch of one never pays process fan-out.
    model = TinyYolo(SMALL, seed=0, deploy=_deploy(4))
    try:
        plan = model.inference_plan()
        out = plan.forward(x[:1])
        assert out.shape[0] == 1
    finally:
        model.inference_plan().close()


def test_more_workers_than_groups(x):
    # Worker count far beyond the chunkable group count must degrade
    # to fewer shards, not to empty chunks.
    model = TinyYolo(SMALL, seed=0,
                     deploy=_deploy(16, gemm="tiled", images_per_tile=4))
    ref = TinyYolo(SMALL, seed=0,
                   deploy=_deploy(1, gemm="tiled", images_per_tile=4))
    try:
        assert np.array_equal(model.inference_plan().forward(x),
                              ref.inference_plan().forward(x))
    finally:
        model.inference_plan().close()


class TestChunkBounds:
    def _bounds(self, n, workers, **kw):
        model = TinyYolo(SMALL, seed=0, deploy=_deploy(workers, **kw))
        executor = ParallelPlanExecutor(model.inference_plan(), workers)
        return executor.chunk_bounds(n)

    @pytest.mark.parametrize("n", [1, 2, 5, 8, 17])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 8])
    def test_bounds_partition_the_batch(self, n, workers):
        bounds = self._bounds(n, workers, gemm="tiled", images_per_tile=2)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(bounds, bounds[1:]):
            assert hi_a == lo_b and lo_a < hi_a

    def test_bounds_land_on_group_boundaries(self):
        bounds = self._bounds(16, 3, gemm="tiled", images_per_tile=4)
        for lo, _hi in bounds:
            assert lo % 4 == 0

    def test_per_image_mode_chunks_per_image(self):
        bounds = self._bounds(7, 3)
        assert len(bounds) == 3
        assert bounds[0][0] == 0 and bounds[-1][1] == 7
