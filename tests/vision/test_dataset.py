"""Tests for the detection dataset builder."""

import numpy as np
import pytest

from repro.datagen import build_corpus, split_corpus
from repro.geometry import Rect, iou
from repro.vision.dataset import (
    CLASS_NAMES,
    DetectionDataset,
    INPUT_H,
    INPUT_W,
    build_detection_dataset,
    input_rect_to_screen,
    screen_rect_to_input,
    to_input_tensor,
)


@pytest.fixture(scope="module")
def samples():
    corpus = build_corpus(seed=0, n_negatives=0)
    splits = split_corpus(corpus)
    return splits["val"][:12]


class TestCoordinateMaps:
    def test_roundtrip(self):
        rect = Rect(30, 40, 50, 60)
        back = input_rect_to_screen(screen_rect_to_input(rect))
        assert iou(back, rect) > 0.999

    def test_scale_factor_uniform(self):
        r = screen_rect_to_input(Rect(0, 0, 360, 640))
        assert r.w == pytest.approx(INPUT_W)
        assert r.h == pytest.approx(INPUT_H)

    def test_to_input_tensor_shape_and_range(self):
        img = np.random.default_rng(0).random((640, 360, 3)).astype(np.float32)
        tensor = to_input_tensor(img)
        assert tensor.shape == (3, INPUT_H, INPUT_W)
        assert tensor.min() >= 0 and tensor.max() <= 1


class TestBuildDataset:
    def test_shapes_and_lengths(self, samples):
        ds = build_detection_dataset(samples)
        assert ds.images.shape == (len(samples), 3, INPUT_H, INPUT_W)
        assert len(ds.labels) == len(samples)
        assert len(ds) == len(samples)
        assert ds.input_size == (INPUT_W, INPUT_H)

    def test_label_count_matches_specs(self, samples):
        ds = build_detection_dataset(samples)
        expected = sum(int(s.spec.has_ago) + s.spec.n_upo for s in samples)
        assert sum(len(l) for l in ds.labels) == expected

    def test_labels_in_input_space(self, samples):
        ds = build_detection_dataset(samples)
        for labs in ds.labels:
            for cls, rect in labs:
                assert 0 <= cls < len(CLASS_NAMES)
                assert rect.right <= INPUT_W + 1
                assert rect.bottom <= INPUT_H + 1

    def test_screen_images_optional(self, samples):
        ds = build_detection_dataset(samples, keep_screen_images=True)
        assert len(ds.screen_images) == len(samples)
        assert ds.screen_images[0].shape == (640, 360, 3)
        ds2 = build_detection_dataset(samples)
        assert ds2.screen_images is None

    def test_masked_variant_differs(self, samples):
        plain = build_detection_dataset(samples)
        masked = build_detection_dataset(samples, masked=True)
        assert not np.allclose(plain.images, masked.images)
        # Same labels though: masking only blurs pixels.
        assert [len(l) for l in plain.labels] == [len(l) for l in masked.labels]

    def test_deterministic_given_seed(self, samples):
        a = build_detection_dataset(samples, noise_seed=5)
        b = build_detection_dataset(samples, noise_seed=5)
        assert np.array_equal(a.images, b.images)

    def test_class_counts(self, samples):
        ds = build_detection_dataset(samples)
        counts = ds.class_counts()
        assert counts["AGO"] == sum(int(s.spec.has_ago) for s in samples)
        assert counts["UPO"] == sum(s.spec.n_upo for s in samples)

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            DetectionDataset(images=np.zeros((2, 1, 8, 8), dtype=np.float32),
                             labels=[[], []])
        with pytest.raises(ValueError):
            DetectionDataset(images=np.zeros((2, 3, 8, 8), dtype=np.float32),
                             labels=[[]])
