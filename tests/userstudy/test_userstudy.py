"""Tests for the survey instrument, population model, and analysis."""

import pytest

from repro.userstudy import (
    Demographics,
    QuestionKind,
    Response,
    SurveyInstrument,
    analyze_responses,
    simulate_responses,
)


def minimal_answers():
    return {
        "Q1": "yes",
        "Q2": "often",
        "Q3": (8.0, 3.0),
        "Q4": (7.0, 4.0),
        "Q5": (9.0, 5.0),
        "Q6": "splash ads",
        "Q7": "bothered, want to exit quickly",
        "Q8": "more AUIs",
        "Q9": "equally important",
        "Q10": 8,
        "Q11": "yes",
        "Q12": "highlight the options",
    }


def response(answers=None, seconds=120.0):
    return Response(
        answers=answers or minimal_answers(),
        demographics=Demographics("female", "18-35", "bachelor+"),
        completion_seconds=seconds,
    )


class TestInstrument:
    def test_has_twelve_questions(self):
        assert len(SurveyInstrument().questions) == 12

    def test_valid_submission_accepted(self):
        inst = SurveyInstrument()
        assert inst.submit(response())
        assert inst.n_valid == 1

    def test_quality_gate_rejects_fast_completion(self):
        inst = SurveyInstrument()
        assert not inst.submit(response(seconds=45))
        assert inst.n_valid == 0
        assert inst.rejected == 1

    def test_missing_answer_rejected(self):
        inst = SurveyInstrument()
        answers = minimal_answers()
        del answers["Q7"]
        with pytest.raises(ValueError, match="Q7"):
            inst.submit(response(answers))

    def test_bad_choice_rejected(self):
        answers = minimal_answers()
        answers["Q1"] = "maybe"
        with pytest.raises(ValueError, match="Q1"):
            SurveyInstrument().submit(response(answers))

    def test_rating_out_of_range_rejected(self):
        answers = minimal_answers()
        answers["Q10"] = 11
        with pytest.raises(ValueError, match="Q10"):
            SurveyInstrument().submit(response(answers))

    def test_pair_rating_validation(self):
        answers = minimal_answers()
        answers["Q3"] = (11.0, 3.0)
        with pytest.raises(ValueError, match="Q3"):
            SurveyInstrument().submit(response(answers))

    def test_question_kinds(self):
        inst = SurveyInstrument()
        assert inst.question("Q1").kind is QuestionKind.CHOICE
        assert inst.question("Q3").kind is QuestionKind.PAIR_RATING
        assert inst.question("Q10").kind is QuestionKind.RATING


class TestPopulation:
    @pytest.fixture(scope="class")
    def findings(self):
        return analyze_responses(simulate_responses(seed=0))

    def test_population_size(self, findings):
        assert findings.n == 165

    def test_q1_matches_paper(self, findings):
        assert findings.frac_misleading == pytest.approx(156 / 165)

    def test_q2_matches_paper(self, findings):
        assert findings.frac_often_misclick == pytest.approx(127 / 165)
        assert findings.frac_never_misclick == pytest.approx(4 / 165)

    def test_accessibility_ratings_match_paper(self, findings):
        assert findings.ago_mean_rating == pytest.approx(7.49, abs=0.005)
        assert findings.upo_mean_rating == pytest.approx(4.38, abs=0.005)
        assert findings.accessibility_gap == pytest.approx(3.11, abs=0.01)

    def test_q7_q8_match_paper(self, findings):
        assert findings.frac_bothered == pytest.approx(137 / 165)
        assert findings.n_foreign_app_users == 112
        assert findings.frac_more_auis_in_china == pytest.approx(86 / 112)

    def test_demand_matches_paper(self, findings):
        assert findings.demand_mean_rating == pytest.approx(7.64, abs=0.005)
        assert findings.n_demand_nine_plus == 48

    def test_all_three_findings_hold(self, findings):
        assert findings.finding1_auis_misleading
        assert findings.finding2_negative_usability_impact
        assert findings.finding3_users_expect_solutions

    def test_demographics_bias_documented(self, findings):
        # The paper flags its young, educated sample as a limitation.
        assert findings.frac_bachelor > 0.9
        assert findings.frac_age_18_35 > 0.7

    def test_deterministic_per_seed(self):
        a = analyze_responses(simulate_responses(seed=3))
        b = analyze_responses(simulate_responses(seed=3))
        assert a.as_dict() == b.as_dict()

    def test_different_seed_same_aggregates(self):
        a = analyze_responses(simulate_responses(seed=0))
        b = analyze_responses(simulate_responses(seed=99))
        assert a.frac_misleading == b.frac_misleading
        assert a.ago_mean_rating == pytest.approx(b.ago_mean_rating, abs=0.01)

    def test_all_simulated_responses_pass_instrument(self):
        inst = SurveyInstrument()
        for r in simulate_responses(seed=1):
            assert inst.submit(r)
        assert inst.n_valid == 165


class TestAnalysis:
    def test_empty_responses_rejected(self):
        with pytest.raises(ValueError):
            analyze_responses([])

    def test_single_response(self):
        f = analyze_responses([response()])
        assert f.n == 1
        assert f.frac_misleading == 1.0
        assert f.ago_mean_rating == pytest.approx(8.0)
        assert f.upo_mean_rating == pytest.approx(4.0)


class TestSubgroups:
    def test_subgroup_partition(self):
        from repro.userstudy.analysis import subgroup_findings
        responses = simulate_responses(seed=0)
        groups = subgroup_findings(responses)
        assert groups["all"].n == 165
        assert groups["male"].n + groups["female"].n == 165
        assert groups["age 18-35"].n + groups["age other"].n == 165

    def test_subgroup_aggregates_are_findings(self):
        from repro.userstudy.analysis import subgroup_findings
        groups = subgroup_findings(simulate_responses(seed=0))
        for name, f in groups.items():
            assert 0.0 <= f.frac_misleading <= 1.0, name
            assert 1.0 <= f.demand_mean_rating <= 10.0, name

    def test_empty_groups_dropped(self):
        from repro.userstudy.analysis import subgroup_findings
        one = [simulate_responses(seed=0)[0]]
        groups = subgroup_findings(one)
        assert "all" in groups
        # A single respondent belongs to exactly one gender group.
        assert ("male" in groups) != ("female" in groups)
