"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_command(self):
        args = build_parser().parse_args(["dataset"])
        assert args.command == "dataset"

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.epochs == 80
        assert args.output == "darpa_model.npz"

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["--seed", "3", "simulate", "--apps", "7", "--ct", "100"])
        assert args.seed == 3 and args.apps == 7 and args.ct == 100.0


class TestCommands:
    def test_dataset_runs(self, capsys):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "632 apps" in out

    def test_survey_runs(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "7.49" in out  # AGO mean rating

    def test_simulate_oracle_runs(self, capsys):
        assert main(["simulate", "--apps", "2"]) == 0
        out = capsys.readouterr().out
        assert "screens analyzed" in out

    def test_train_and_evaluate_roundtrip(self, tmp_path, capsys):
        model_path = tmp_path / "tiny.npz"
        rc = main(["train", "--epochs", "2", "--limit", "12",
                   "--output", str(model_path), "--no-eval"])
        assert rc == 0
        assert model_path.exists()
        state = dict(np.load(model_path))
        assert any(k.startswith("bn") for k in state)
        rc = main(["evaluate", str(model_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "All" in out
