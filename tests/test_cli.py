"""Tests for the command-line interface."""

import os

import numpy as np
import pytest

from repro.cli import build_parser, main

OPS_FIXTURE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "ops", "fixtures", "run")
OPS_GOLDENS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "ops", "goldens")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["definitely-not-a-command"])
        assert excinfo.value.code == 2

    def test_regress_requires_both_files(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["regress", "--baseline", "b.json"])
        assert excinfo.value.code == 2

    def test_dataset_command(self):
        args = build_parser().parse_args(["dataset"])
        assert args.command == "dataset"

    def test_fleet_option_defaults(self):
        args = build_parser().parse_args(["slo"])
        assert args.apps == 8 and args.ct == 200.0
        assert not args.storm and not args.fail_on_alert

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.epochs == 80
        assert args.output == "darpa_model.npz"

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["--seed", "3", "simulate", "--apps", "7", "--ct", "100"])
        assert args.seed == 3 and args.apps == 7 and args.ct == 100.0


class TestCommands:
    def test_dataset_runs(self, capsys):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "632 apps" in out

    def test_survey_runs(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "7.49" in out  # AGO mean rating

    def test_simulate_oracle_runs(self, capsys):
        assert main(["simulate", "--apps", "2"]) == 0
        out = capsys.readouterr().out
        assert "screens analyzed" in out

    def test_train_and_evaluate_roundtrip(self, tmp_path, capsys):
        model_path = tmp_path / "tiny.npz"
        rc = main(["train", "--epochs", "2", "--limit", "12",
                   "--output", str(model_path), "--no-eval"])
        assert rc == 0
        assert model_path.exists()
        state = dict(np.load(model_path))
        assert any(k.startswith("bn") for k in state)
        rc = main(["evaluate", str(model_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "All" in out


class TestTelemetryCommands:
    def test_slo_zero_fault_is_quiet(self, capsys):
        assert main(["slo", "--apps", "4", "--fail-on-alert"]) == 0
        out = capsys.readouterr().out
        assert "reaction_p95" in out
        assert "no burn-rate alerts" in out
        assert "VIOLATED" not in out

    def test_slo_storm_alerts_and_fails(self, tmp_path, capsys):
        report_path = tmp_path / "slo.json"
        rc = main(["slo", "--apps", "4", "--storm", "--fail-on-alert",
                   "--json", str(report_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "burn-rate alert" in out
        import json
        report = json.loads(report_path.read_text())
        assert report["alerts"] and not report["all_met"]

    def test_metrics_exposition(self, tmp_path, capsys):
        out_path = tmp_path / "fleet.prom"
        assert main(["metrics", "--apps", "3",
                     "--output", str(out_path)]) == 0
        text = out_path.read_text()
        assert '# TYPE darpa_latency_reaction_ms summary' in text
        assert "darpa_pipeline_screens_analyzed_total" in text
        assert "darpa_trace_dropped_spans_total 0" in text

    def test_trace_then_top_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["trace", "--output", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "0 spans dropped" in out
        assert main(["top", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "reaction" in out and "1 session(s)" in out

    def test_top_missing_trace_exits_one(self, tmp_path, capsys):
        rc = main(["top", "--trace", str(tmp_path / "nope.jsonl")])
        assert rc == 1
        assert "cannot read trace" in capsys.readouterr().err

    def test_top_malformed_trace_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "debounce"}\n{not json\n')
        assert main(["top", "--trace", str(bad)]) == 1
        assert "malformed JSONL" in capsys.readouterr().err
        not_spans = tmp_path / "notspans.jsonl"
        not_spans.write_text('{"rows": 3}\n')
        assert main(["top", "--trace", str(not_spans)]) == 1
        assert "not a span record" in capsys.readouterr().err

    def test_trace_unreadable_model_exits_two(self, tmp_path, capsys):
        rc = main(["trace", "--model", str(tmp_path / "absent.npz"),
                   "--output", str(tmp_path / "trace.jsonl")])
        assert rc == 2
        assert "trace: cannot read model" in capsys.readouterr().err

    def test_trace_unwritable_output_exits_two_fast(self, tmp_path,
                                                    capsys):
        # The artifact path is opened before any session is replayed, so
        # a bad path fails in milliseconds, not after a traced run.
        rc = main(["trace",
                   "--output", str(tmp_path / "no" / "dir" / "t.jsonl")])
        assert rc == 2
        assert "trace: cannot write trace" in capsys.readouterr().err

    def test_metrics_unwritable_output_exits_two_fast(self, tmp_path,
                                                      capsys):
        rc = main(["metrics", "--apps", "2",
                   "--output", str(tmp_path / "no" / "dir" / "m.prom")])
        assert rc == 2
        assert "metrics: cannot write exposition" in capsys.readouterr().err

    def test_regress_subcommand_delegates(self, tmp_path, capsys):
        payload = tmp_path / "b.json"
        payload.write_text('{"alerts_total": 9}')
        assert main(["regress", "--baseline", str(payload),
                     "--fresh", str(payload)]) == 0
        drifted = tmp_path / "f.json"
        drifted.write_text('{"alerts_total": 11}')
        assert main(["regress", "--baseline", str(payload),
                     "--fresh", str(drifted)]) == 1
        assert main(["regress", "--baseline", str(payload),
                     "--fresh", str(drifted),
                     "--rule", "alerts_total=abs:5"]) == 0


class TestDashCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["dash", "--dir", "out"])
        assert args.command == "dash" and args.dir == "out"
        assert args.ct == 200.0 and args.port == 8765
        assert args.host == "127.0.0.1" and args.once is None

    def test_dir_is_required(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["dash"])
        assert excinfo.value.code == 2

    def test_missing_run_directory_exits_two(self, tmp_path, capsys):
        rc = main(["dash", "--dir", str(tmp_path / "absent"), "--once",
                   str(tmp_path / "out")])
        assert rc == 2
        assert "dash: cannot load run directory" in capsys.readouterr().err

    def test_artifact_free_directory_exits_two(self, tmp_path, capsys):
        rc = main(["dash", "--dir", str(tmp_path), "--once",
                   str(tmp_path / "out")])
        assert rc == 2
        assert "no run artifacts" in capsys.readouterr().err

    def test_unwritable_dump_directory_exits_two(self, tmp_path, capsys):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory\n")
        rc = main(["dash", "--dir", OPS_FIXTURE, "--once",
                   str(blocker / "out")])
        assert rc == 2
        assert "dash: cannot write route dump" in capsys.readouterr().err

    def test_once_dump_matches_the_committed_goldens(self, tmp_path,
                                                     capsys):
        out_dir = tmp_path / "routes"
        rc = main(["dash", "--dir", OPS_FIXTURE, "--once", str(out_dir)])
        assert rc == 0
        assert "Wrote" in capsys.readouterr().out
        dumped = sorted(os.listdir(out_dir))
        assert dumped == sorted(os.listdir(OPS_GOLDENS))
        for name in dumped:
            got = (out_dir / name).read_bytes()
            with open(os.path.join(OPS_GOLDENS, name), "rb") as fp:
                assert got == fp.read(), name
