"""Tests for simulated apps, Monkey, the perf meter, and ADB dumps."""

import numpy as np
import pytest

from repro.android import (
    AppSpec,
    Device,
    DeviceProfile,
    Monkey,
    PerfMeter,
    ResourceId,
    SemanticRole,
    SimulatedApp,
    UiStep,
    UiTimeline,
    View,
    dump_view_hierarchy,
)
from repro.android.apps import ScreenState
from repro.android.device import PerfOp
from repro.android.events import AccessibilityEventType
from repro.geometry import Rect
from repro.imaging.color import PALETTE


def plain_screen(name="home"):
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    return ScreenState(root=root, name=name)


def aui_screen():
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    ago = root.add_child(View(bounds=Rect(80, 250, 200, 60), clickable=True,
                              role=SemanticRole.AGO, bg_color=PALETTE["red"]))
    upo = root.add_child(View(bounds=Rect(320, 16, 20, 20), clickable=True,
                              role=SemanticRole.UPO))
    return ScreenState(
        root=root, is_aui=True, name="interstitial",
        label_boxes=[("AGO", ago.bounds), ("UPO", upo.bounds)],
    )


class TestTimeline:
    def test_steps_must_be_ordered(self):
        with pytest.raises(ValueError):
            UiTimeline([UiStep(100, plain_screen()), UiStep(50, plain_screen())])

    def test_duration_includes_minor_updates(self):
        tl = UiTimeline([UiStep(0, plain_screen()),
                         UiStep(1000, plain_screen(), minor_updates=4,
                                minor_spacing_ms=100)])
        assert tl.duration_ms == 1400

    def test_settle_time(self):
        s1 = UiStep(0, plain_screen(), minor_updates=3, minor_spacing_ms=100)
        assert s1.settle_time_ms(next_at_ms=1000) == 700
        assert s1.settle_time_ms(next_at_ms=None) == float("inf")

    def test_aui_steps_filter(self):
        tl = UiTimeline([UiStep(0, plain_screen()), UiStep(10, aui_screen())])
        assert len(tl.aui_steps()) == 1


class TestSimulatedApp:
    def make_app(self, device):
        tl = UiTimeline([
            UiStep(0, plain_screen("a")),
            UiStep(1000, aui_screen(), minor_updates=2, minor_spacing_ms=50),
            UiStep(3000, plain_screen("b")),
        ])
        return SimulatedApp(device, AppSpec(package="com.demo", timeline=tl))

    def test_launch_emits_window_events(self):
        device = Device()
        app = self.make_app(device)
        app.launch()
        device.clock.advance(100)
        types = [e.event_type for e in device.event_log]
        assert AccessibilityEventType.TYPE_WINDOW_STATE_CHANGED in types
        assert AccessibilityEventType.TYPE_WINDOWS_CHANGED in types

    def test_minor_updates_emitted(self):
        device = Device()
        app = self.make_app(device)
        app.launch()
        device.clock.advance(1200)
        content = [e for e in device.event_log
                   if e.event_type is AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED]
        assert len(content) == 2

    def test_shown_log_tracks_dwell(self):
        device = Device()
        app = self.make_app(device)
        app.launch()
        device.clock.advance(5000)
        app.finish()
        assert [r.screen.name for r in app.shown_log] == ["a", "interstitial", "b"]
        assert app.shown_log[0].dwell_ms == pytest.approx(1000)
        assert app.shown_log[1].dwell_ms == pytest.approx(2000)
        assert app.shown_log[2].dwell_ms == pytest.approx(2000)

    def test_aui_records_with_min_dwell(self):
        device = Device()
        app = self.make_app(device)
        app.launch()
        device.clock.advance(5000)
        app.finish()
        assert len(app.aui_records()) == 1
        assert app.aui_records(min_dwell_ms=2500) == []

    def test_double_launch_rejected(self):
        device = Device()
        app = self.make_app(device)
        app.launch()
        with pytest.raises(RuntimeError):
            app.launch()

    def test_window_attached_to_manager(self):
        device = Device()
        app = self.make_app(device)
        app.launch()
        device.clock.advance(10)
        assert device.window_manager.top_app_window().package == "com.demo"


class TestMonkey:
    def test_schedules_expected_tap_rate(self):
        device = Device()
        monkey = Monkey(device, seed=3, taps_per_second=2.0)
        n = monkey.schedule_run(60_000)
        assert 80 <= n <= 160  # ~120 expected

    def test_taps_emit_touch_events(self):
        device = Device()
        root = View(bounds=Rect(0, 0, 360, 568), clickable=True)
        device.window_manager.attach_app_window(root, "com.demo")
        monkey = Monkey(device, seed=3, taps_per_second=5.0)
        monkey.schedule_run(2000)
        device.clock.advance(2000)
        types = {e.event_type for e in device.event_log}
        assert AccessibilityEventType.TYPE_TOUCH_INTERACTION_START in types
        assert AccessibilityEventType.TYPE_VIEW_CLICKED in types
        assert len(monkey.taps) > 0

    def test_deterministic_given_seed(self):
        def run():
            device = Device()
            monkey = Monkey(device, seed=11, taps_per_second=3.0)
            monkey.schedule_run(5000)
            device.clock.advance(5000)
            return [(t.at_ms, t.x, t.y) for t in monkey.taps]

        assert run() == run()

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Monkey(Device(), taps_per_second=0)


class TestPerfMeter:
    def test_baseline_report(self):
        meter = PerfMeter(DeviceProfile())
        report = meter.report(60_000)
        assert report.cpu_pct == pytest.approx(55.22)
        assert report.memory_mb == pytest.approx(4291.96)
        assert report.fps == pytest.approx(81.0)
        assert report.power_mw == pytest.approx(443.85)

    def test_work_increases_cpu_and_power(self):
        meter = PerfMeter(DeviceProfile())
        meter.record(PerfOp.INFERENCE, 100)
        report = meter.report(60_000)
        assert report.cpu_pct > 55.22
        assert report.power_mw > 443.85
        assert report.fps < 81.0

    def test_components_charge_memory(self):
        meter = PerfMeter(DeviceProfile())
        meter.enable_component("monitoring")
        meter.enable_component("detection")
        report = meter.report(60_000)
        expected = 4291.96 + 60.2 + 55.4
        assert report.memory_mb == pytest.approx(expected)

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            PerfMeter(DeviceProfile()).enable_component("telemetry")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PerfMeter(DeviceProfile()).record(PerfOp.SCREENSHOT, -1)

    def test_report_requires_positive_duration(self):
        with pytest.raises(ValueError):
            PerfMeter(DeviceProfile()).report(0)

    def test_reset_clears_counts(self):
        meter = PerfMeter(DeviceProfile())
        meter.record(PerfOp.SCREENSHOT, 5)
        meter.enable_component("detection")
        meter.reset()
        report = meter.report(1000)
        assert report.memory_mb == pytest.approx(4291.96)
        assert report.counts["screenshot"] == 0


class TestAdbDump:
    def test_dump_reports_screen_coords(self):
        device = Device()
        root = View(bounds=Rect(0, 0, 360, 568))
        root.add_child(View(bounds=Rect(10, 20, 30, 40), clickable=True,
                            resource_id=ResourceId("com.demo", "btn_close"),
                            text="close"))
        device.window_manager.attach_app_window(root, "com.demo",
                                                fullscreen=False)
        nodes = dump_view_hierarchy(device.window_manager)
        assert len(nodes) == 2
        child = nodes[1]
        assert child.bounds == Rect(10, 44, 30, 40)  # +24 status bar
        assert child.resource_entry == "btn_close"
        assert child.clickable and child.text == "close"

    def test_dump_excludes_overlays(self):
        device = Device()
        device.window_manager.attach_app_window(
            View(bounds=Rect(0, 0, 360, 568)), "com.demo")
        from repro.android import LayoutParams
        device.window_manager.add_view(View(bounds=Rect(0, 0, 1, 1)),
                                       LayoutParams(), "org.repro.darpa")
        nodes = dump_view_hierarchy(device.window_manager)
        assert all(n.package == "com.demo" for n in nodes)

    def test_dump_filters_by_package(self):
        device = Device()
        device.window_manager.attach_app_window(
            View(bounds=Rect(0, 0, 360, 568)), "com.a")
        device.window_manager.attach_app_window(
            View(bounds=Rect(0, 0, 360, 568)), "com.b")
        assert all(n.package == "com.a"
                   for n in dump_view_hierarchy(device.window_manager, "com.a"))

    def test_idless_view_has_empty_entry(self):
        device = Device()
        device.window_manager.attach_app_window(
            View(bounds=Rect(0, 0, 360, 568)), "com.demo")
        nodes = dump_view_hierarchy(device.window_manager)
        assert nodes[0].resource_entry == ""


class TestUpdateOffsets:
    def test_explicit_offsets_override_uniform(self):
        step = UiStep(100, plain_screen(), minor_updates=5,
                      minor_spacing_ms=10, update_offsets=[30.0, 90.0])
        assert step.offsets() == [30.0, 90.0]
        assert step.last_event_ms() == 190.0

    def test_offsets_sorted_on_resolution(self):
        step = UiStep(0, plain_screen(), update_offsets=[90.0, 30.0])
        assert step.offsets() == [30.0, 90.0]

    def test_settle_time_uses_last_offset(self):
        step = UiStep(0, plain_screen(), update_offsets=[100.0, 400.0])
        assert step.settle_time_ms(1000.0) == 600.0

    def test_app_emits_at_offsets(self):
        device = Device()
        tl = UiTimeline([UiStep(0, plain_screen(),
                                update_offsets=[50.0, 300.0])])
        app = SimulatedApp(device, AppSpec(package="com.x", timeline=tl))
        app.launch()
        device.clock.advance(1000)
        content = [e.timestamp_ms for e in device.event_log
                   if e.event_type is AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED]
        assert content == [50.0, 300.0]
