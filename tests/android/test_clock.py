"""Tests for the simulated clock."""

import pytest

from repro.android import SimulatedClock


class TestAdvance:
    def test_starts_at_given_time(self):
        assert SimulatedClock(5.0).now_ms == 5.0

    def test_advance_moves_time(self):
        clock = SimulatedClock()
        clock.advance(100)
        assert clock.now_ms == 100

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestScheduling:
    def test_callback_fires_at_due_time(self):
        clock = SimulatedClock()
        fired = []
        clock.schedule(50, lambda: fired.append(clock.now_ms))
        clock.advance(49)
        assert fired == []
        clock.advance(2)
        assert fired == [50.0]

    def test_callbacks_fire_in_timestamp_order(self):
        clock = SimulatedClock()
        order = []
        clock.schedule(30, lambda: order.append("b"))
        clock.schedule(10, lambda: order.append("a"))
        clock.schedule(60, lambda: order.append("c"))
        clock.advance(100)
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        clock = SimulatedClock()
        order = []
        clock.schedule(10, lambda: order.append(1))
        clock.schedule(10, lambda: order.append(2))
        clock.advance(20)
        assert order == [1, 2]

    def test_callback_can_schedule_followup_within_window(self):
        clock = SimulatedClock()
        fired = []

        def first():
            fired.append(("first", clock.now_ms))
            clock.schedule(5, lambda: fired.append(("second", clock.now_ms)))

        clock.schedule(10, first)
        clock.advance(20)
        assert fired == [("first", 10.0), ("second", 15.0)]

    def test_cancel_prevents_firing(self):
        clock = SimulatedClock()
        fired = []
        handle = clock.schedule(10, lambda: fired.append(1))
        assert clock.cancel(handle)
        clock.advance(20)
        assert fired == []

    def test_cancel_unknown_handle_returns_false(self):
        clock = SimulatedClock()
        assert not clock.cancel(999)

    def test_schedule_in_past_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().schedule(-5, lambda: None)

    def test_pending_timers_count(self):
        clock = SimulatedClock()
        clock.schedule(10, lambda: None)
        clock.schedule(20, lambda: None)
        assert clock.pending_timers() == 2
        clock.advance(15)
        assert clock.pending_timers() == 1
