"""Tests for session recording and deterministic replay."""

import pytest

from repro.android import AccessibilityEventType, Device, Monkey, View
from repro.android.replay import (
    SessionRecorder,
    SessionTrace,
    TraceEntry,
    replay_trace,
)
from repro.geometry import Rect


def run_source_session(seed=3, duration=5000):
    device = Device(seed=seed)
    root = View(bounds=Rect(0, 0, 360, 568), clickable=True)
    device.window_manager.attach_app_window(root, "com.demo")
    recorder = SessionRecorder(device)
    recorder.start()
    monkey = Monkey(device, seed=seed, taps_per_second=2.0)
    monkey.schedule_run(duration)
    device.clock.advance(duration)
    # Taps are recorded by the driver alongside dispatch.
    for tap in monkey.taps:
        recorder._entries.append(TraceEntry(at_ms=tap.at_ms, kind="tap",
                                            x=tap.x, y=tap.y))
    return device, recorder.trace()


class TestRecording:
    def test_records_events_in_order(self):
        _, trace = run_source_session()
        times = [e.at_ms for e in trace.entries]
        assert times == sorted(times)
        assert trace.events() and trace.taps()

    def test_trace_rejects_unordered(self):
        with pytest.raises(ValueError):
            SessionTrace(entries=[
                TraceEntry(at_ms=10, kind="event", event_type=1),
                TraceEntry(at_ms=5, kind="event", event_type=1),
            ])

    def test_double_start_is_idempotent(self):
        device = Device()
        rec = SessionRecorder(device)
        rec.start()
        rec.start()
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "a")
        assert len(rec.trace().events()) == 1


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        _, trace = run_source_session()
        path = tmp_path / "session.trace.json"
        trace.save(path)
        loaded = SessionTrace.load(path)
        assert loaded.entries == trace.entries

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            SessionTrace.load(path)


class TestReplay:
    def test_replay_reproduces_event_stream(self):
        source_device, trace = run_source_session()
        replay_device = Device(seed=99)  # different seed: replay is exact anyway
        n_events, n_taps = replay_trace(trace, replay_device)
        replay_device.clock.advance(trace.duration_ms + 1)
        src = [(e.timestamp_ms, int(e.event_type))
               for e in source_device.event_log]
        dst = [(e.timestamp_ms, int(e.event_type))
               for e in replay_device.event_log]
        assert dst == src
        assert n_events == len(src)
        assert n_taps == len(trace.taps())

    def test_replayed_taps_hit_views(self):
        _, trace = run_source_session()
        replay_device = Device()
        clicks = []
        root = View(bounds=Rect(0, 0, 360, 640), clickable=True,
                    on_click=lambda: clicks.append(1))
        replay_device.window_manager.attach_app_window(root, "com.demo",
                                                       fullscreen=True)
        replay_trace(trace, replay_device)
        replay_device.clock.advance(trace.duration_ms + 1)
        assert len(clicks) == len(trace.taps())

    def test_taps_can_be_excluded(self):
        _, trace = run_source_session()
        device = Device()
        _, n_taps = replay_trace(trace, device, include_taps=False)
        assert n_taps == 0

    def test_replay_onto_advanced_clock_rejected(self):
        _, trace = run_source_session()
        device = Device()
        device.clock.advance(10_000)
        with pytest.raises(ValueError):
            replay_trace(trace, device)
