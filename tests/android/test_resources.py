"""Tests for resource-id minting and obfuscation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.android.resources import (
    ResourceId,
    ResourceIdPolicy,
    make_resource_id,
    obfuscate_entry,
)


class TestResourceId:
    def test_qualified_format(self):
        rid = ResourceId("com.demo", "btn_close")
        assert str(rid) == "com.demo:id/btn_close"
        assert rid.qualified == "com.demo:id/btn_close"


class TestPolicies:
    def test_readable_keeps_entry(self):
        rid = make_resource_id("com.a", "iv_close", ResourceIdPolicy.READABLE)
        assert rid.entry == "iv_close"

    def test_obfuscated_hides_entry(self):
        rng = np.random.default_rng(0)
        rid = make_resource_id("com.a", "iv_close",
                               ResourceIdPolicy.OBFUSCATED, rng)
        assert "close" not in rid.entry
        assert len(rid.entry) == 3

    def test_dynamic_is_numeric_suffixed(self):
        rng = np.random.default_rng(0)
        rid = make_resource_id("com.a", "iv_close",
                               ResourceIdPolicy.DYNAMIC, rng)
        assert rid.entry.startswith("v_")
        assert rid.entry[2:].isdigit()

    def test_non_readable_requires_rng(self):
        with pytest.raises(ValueError):
            make_resource_id("com.a", "x", ResourceIdPolicy.OBFUSCATED)

    @given(entry=st.text(alphabet="abcdefgh_", min_size=1, max_size=20),
           seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_obfuscation_never_leaks_readable_name(self, entry, seed):
        rng = np.random.default_rng(seed)
        obfuscated = obfuscate_entry(entry, rng)
        # A 3-char lowercase+digit name cannot contain a 4+-char token.
        assert len(obfuscated) == 3
        if len(entry) >= 4:
            assert entry not in obfuscated

    def test_obfuscation_varies_across_calls(self):
        rng = np.random.default_rng(1)
        names = {obfuscate_entry("btn_close", rng) for _ in range(30)}
        assert len(names) > 10
