"""Tests for Screen, Window, WindowManager — incl. the Fig-4 geometry."""

import pytest

from repro.android import (
    LayoutParams,
    Screen,
    View,
    WindowManager,
    WindowType,
)
from repro.geometry import Offset, Rect


@pytest.fixture
def screen():
    return Screen(width=360, height=640, status_bar_height=24, nav_bar_height=48)


@pytest.fixture
def wm(screen):
    return WindowManager(screen)


def app_root():
    return View(bounds=Rect(0, 0, 360, 568))


class TestScreen:
    def test_app_area_excludes_bars(self, screen):
        assert screen.app_area == Rect(0, 24, 360, 568)

    def test_fullscreen_offset_zero(self, screen):
        assert screen.window_offset(fullscreen=True) == Offset(0, 0)

    def test_windowed_offset_is_status_bar(self, screen):
        assert screen.window_offset(fullscreen=False) == Offset(0, 24)

    def test_rejects_bars_larger_than_screen(self):
        with pytest.raises(ValueError):
            Screen(width=100, height=50, status_bar_height=30, nav_bar_height=30)

    def test_window_size_modes(self, screen):
        assert screen.window_size(True) == Rect(0, 0, 360, 640)
        assert screen.window_size(False) == Rect(0, 0, 360, 568)


class TestAppWindows:
    def test_attach_sets_offset(self, wm):
        w = wm.attach_app_window(app_root(), "com.demo", fullscreen=False)
        assert w.offset == Offset(0, 24)

    def test_attach_fullscreen_no_offset(self, wm):
        w = wm.attach_app_window(app_root(), "com.demo", fullscreen=True)
        assert w.offset == Offset(0, 0)

    def test_same_package_replaces(self, wm):
        wm.attach_app_window(app_root(), "com.demo")
        wm.attach_app_window(app_root(), "com.demo")
        apps = [w for w in wm.windows if w.kind is WindowType.APPLICATION]
        assert len(apps) == 1

    def test_top_app_window_latest(self, wm):
        wm.attach_app_window(app_root(), "com.a")
        wm.attach_app_window(app_root(), "com.b")
        assert wm.top_app_window().package == "com.b"

    def test_screen_bounds_of_view(self, wm):
        w = wm.attach_app_window(app_root(), "com.demo", fullscreen=False)
        v = View(bounds=Rect(10, 10, 50, 50))
        w.root.add_child(v)
        assert w.screen_bounds_of(v) == Rect(10, 34, 50, 50)


class TestOverlays:
    def test_add_view_inherits_app_insets(self, wm):
        wm.attach_app_window(app_root(), "com.demo", fullscreen=False)
        deco = View(bounds=Rect(0, 0, 1, 1))
        overlay = wm.add_view(deco, LayoutParams(x=100, y=200, width=30, height=30),
                              package="org.repro.darpa")
        assert overlay.offset == Offset(0, 24)
        assert deco.bounds == Rect(100, 200, 30, 30)

    def test_add_view_over_fullscreen_app(self, wm):
        wm.attach_app_window(app_root(), "com.demo", fullscreen=True)
        overlay = wm.add_view(View(bounds=Rect(0, 0, 1, 1)),
                              LayoutParams(), package="org.repro.darpa")
        assert overlay.offset == Offset(0, 0)

    def test_remove_view(self, wm):
        wm.attach_app_window(app_root(), "com.demo")
        deco = View(bounds=Rect(0, 0, 1, 1))
        wm.add_view(deco, LayoutParams(width=1, height=1), "org.repro.darpa")
        assert wm.remove_view(deco)
        assert wm.overlays() == []

    def test_remove_unknown_view_false(self, wm):
        assert not wm.remove_view(View(bounds=Rect(0, 0, 1, 1)))

    def test_remove_windows_of_package(self, wm):
        wm.attach_app_window(app_root(), "com.demo")
        wm.add_view(View(bounds=Rect(0, 0, 1, 1)), LayoutParams(), "org.repro.darpa")
        wm.add_view(View(bounds=Rect(0, 0, 1, 1)), LayoutParams(), "org.repro.darpa")
        assert wm.remove_windows_of("org.repro.darpa") == 2


class TestLocationOnScreen:
    """The anchor-view calibration mechanism (paper Fig. 4)."""

    def test_anchor_at_origin_reports_window_offset(self, wm):
        wm.attach_app_window(app_root(), "com.demo", fullscreen=False)
        anchor = View(bounds=Rect(0, 0, 1, 1))
        wm.add_view(anchor, LayoutParams(x=0, y=0, width=1, height=1),
                    "org.repro.darpa")
        assert wm.get_location_on_screen(anchor) == Offset(0, 24)

    def test_anchor_fullscreen_reports_zero(self, wm):
        wm.attach_app_window(app_root(), "com.demo", fullscreen=True)
        anchor = View(bounds=Rect(0, 0, 1, 1))
        wm.add_view(anchor, LayoutParams(x=0, y=0, width=1, height=1),
                    "org.repro.darpa")
        assert wm.get_location_on_screen(anchor) == Offset(0, 0)

    def test_detached_view_raises(self, wm):
        with pytest.raises(ValueError):
            wm.get_location_on_screen(View(bounds=Rect(0, 0, 1, 1)))


class TestDispatchClick:
    def test_click_routed_to_app_view(self, wm):
        root = app_root()
        clicks = []
        btn = View(bounds=Rect(100, 100, 50, 50), clickable=True,
                   on_click=lambda: clicks.append("btn"))
        root.add_child(btn)
        wm.attach_app_window(root, "com.demo", fullscreen=False)
        # Screen coords: window offset (0, 24) applies.
        hit = wm.dispatch_click(125, 149)
        assert hit is btn and clicks == ["btn"]

    def test_click_on_status_bar_misses_app(self, wm):
        root = app_root()
        btn = View(bounds=Rect(0, 0, 360, 20), clickable=True)
        root.add_child(btn)
        wm.attach_app_window(root, "com.demo", fullscreen=False)
        # y=10 is inside the status bar; app window starts at y=24.
        # Window-local y would be -14 -> miss... but the root spans
        # negative? No: bounds start at 0, so -14 misses.
        assert wm.dispatch_click(180, 10) is None

    def test_topmost_window_wins(self, wm):
        under_clicks, over_clicks = [], []
        root = app_root()
        root.clickable = True
        root.on_click = lambda: under_clicks.append(1)
        wm.attach_app_window(root, "com.demo", fullscreen=True)
        over = View(bounds=Rect(0, 0, 1, 1), clickable=True,
                    on_click=lambda: over_clicks.append(1))
        wm.add_view(over, LayoutParams(x=100, y=100, width=50, height=50),
                    "org.repro.darpa")
        wm.dispatch_click(120, 120)
        assert over_clicks == [1] and under_clicks == []
