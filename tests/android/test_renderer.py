"""Tests for the window-stack renderer."""

import numpy as np
import pytest

from repro.android import (
    Device,
    LayoutParams,
    Screen,
    View,
    WindowManager,
    render_screen,
    render_window,
)
from repro.android.view import Shape
from repro.geometry import Rect
from repro.imaging.color import PALETTE


@pytest.fixture
def wm():
    return WindowManager(Screen())


def colored_root(color_name="blue", w=360, h=568):
    return View(bounds=Rect(0, 0, w, h), bg_color=PALETTE[color_name])


class TestRenderScreen:
    def test_output_shape(self, wm):
        wm.attach_app_window(colored_root(), "com.demo")
        canvas = render_screen(wm)
        assert canvas.pixels.shape == (640, 360, 3)

    def test_windowed_app_shows_status_bar(self, wm):
        wm.attach_app_window(colored_root("white"), "com.demo", fullscreen=False)
        canvas = render_screen(wm)
        # Status bar is dark; app content below it is white.
        assert canvas.pixels[4, 180].mean() < 0.3
        assert canvas.pixels[100, 180].mean() > 0.9

    def test_fullscreen_app_hides_bars(self, wm):
        root = colored_root("white", h=640)
        wm.attach_app_window(root, "com.demo", fullscreen=True)
        canvas = render_screen(wm)
        assert canvas.pixels[4, 180].mean() > 0.9
        assert canvas.pixels[636, 180].mean() > 0.9

    def test_app_content_offset_by_status_bar(self, wm):
        root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
        # Red box at window (0, 0): on screen it must start at y=24.
        root.add_child(View(bounds=Rect(0, 0, 50, 10), bg_color=PALETTE["red"]))
        wm.attach_app_window(root, "com.demo", fullscreen=False)
        canvas = render_screen(wm)
        px = canvas.pixels[29, 25]  # y=24..34 should be red
        assert px[0] > 0.6 and px[1] < 0.4

    def test_overlay_rendered_above_app(self, wm):
        wm.attach_app_window(colored_root("white"), "com.demo")
        deco = View(bounds=Rect(0, 0, 1, 1), bg_color=PALETTE["green"])
        wm.add_view(deco, LayoutParams(x=100, y=100, width=40, height=40),
                    "org.repro.darpa")
        canvas = render_screen(wm)
        px = canvas.pixels[24 + 120, 120]  # overlay shares app insets
        assert px[1] > 0.5 and px[0] < 0.5

    def test_noise_applied_when_rng_given(self, wm):
        wm.attach_app_window(colored_root("white"), "com.demo")
        a = render_screen(wm).pixels
        b = render_screen(wm, noise_rng=np.random.default_rng(0)).pixels
        assert not np.array_equal(a, b)

    def test_deterministic_without_noise(self, wm):
        wm.attach_app_window(colored_root(), "com.demo")
        a = render_screen(wm).pixels
        b = render_screen(wm).pixels
        assert np.array_equal(a, b)


class TestViewStyling:
    def test_text_rendered(self, wm):
        root = colored_root("white")
        root.add_child(View(bounds=Rect(50, 200, 260, 40), text="Subscribe Now",
                            text_size=16, text_color=PALETTE["black"]))
        wm.attach_app_window(root, "com.demo")
        canvas = render_screen(wm)
        region = canvas.pixels[224:264, 50:310]
        assert region.min() < 0.15

    def test_circle_shape(self, wm):
        root = colored_root("white")
        root.add_child(View(bounds=Rect(100, 100, 80, 80), shape=Shape.CIRCLE,
                            bg_color=PALETTE["red"]))
        wm.attach_app_window(root, "com.demo", fullscreen=True)
        canvas = render_screen(wm)
        assert canvas.pixels[140, 140, 0] > 0.6      # center red
        assert canvas.pixels[104, 104].mean() > 0.9  # corner stays white

    def test_cross_icon(self, wm):
        root = colored_root("white")
        root.add_child(View(bounds=Rect(300, 20, 30, 30), icon="cross",
                            icon_color=PALETTE["dark_gray"]))
        wm.attach_app_window(root, "com.demo", fullscreen=True)
        canvas = render_screen(wm)
        assert canvas.pixels[35, 315].mean() < 0.6  # icon center darkened

    def test_alpha_translucency(self, wm):
        root = colored_root("white")
        root.add_child(View(bounds=Rect(0, 0, 360, 100),
                            bg_color=PALETTE["black"], bg_alpha=0.25))
        wm.attach_app_window(root, "com.demo", fullscreen=True)
        canvas = render_screen(wm)
        assert canvas.pixels[50, 180].mean() == pytest.approx(0.75, abs=0.02)

    def test_render_window_single(self):
        screen = Screen()
        wm = WindowManager(screen)
        window = wm.attach_app_window(colored_root("teal"), "com.demo")
        canvas = render_window(window, screen)
        assert canvas.pixels.shape == (640, 360, 3)
