"""Tests for views and view trees."""

import pytest

from repro.android import ResourceId, SemanticRole, View, ViewGroup, Visibility
from repro.geometry import Rect


def small_tree():
    root = ViewGroup(bounds=Rect(0, 0, 360, 568))
    card = root.add_child(View(bounds=Rect(30, 100, 300, 360)))
    ago = card.add_child(
        View(bounds=Rect(80, 300, 200, 56), clickable=True,
             role=SemanticRole.AGO,
             resource_id=ResourceId("com.demo", "btn_subscribe"))
    )
    upo = root.add_child(
        View(bounds=Rect(320, 70, 20, 20), clickable=True,
             role=SemanticRole.UPO,
             resource_id=ResourceId("com.demo", "iv_close"))
    )
    return root, card, ago, upo


class TestTreeOps:
    def test_iter_tree_preorder(self):
        root, card, ago, upo = small_tree()
        assert [v.view_id for v in root.iter_tree()] == [
            root.view_id, card.view_id, ago.view_id, upo.view_id
        ]

    def test_gone_subtree_skipped(self):
        root, card, ago, upo = small_tree()
        card.visibility = Visibility.GONE
        ids = [v.view_id for v in root.iter_tree()]
        assert ago.view_id not in ids and card.view_id not in ids

    def test_invisible_in_tree_but_not_visible(self):
        root, card, ago, _ = small_tree()
        ago.visibility = Visibility.INVISIBLE
        assert ago in list(root.iter_tree())
        assert ago not in list(root.iter_visible())

    def test_find_by_role(self):
        root, _, ago, upo = small_tree()
        assert root.find_by_role(SemanticRole.AGO) == [ago]
        assert root.find_by_role(SemanticRole.UPO) == [upo]

    def test_find_by_resource_entry(self):
        root, _, _, upo = small_tree()
        assert root.find_by_resource_entry("close") == [upo]
        assert root.find_by_resource_entry("nonexistent") == []

    def test_count_and_depth(self):
        root, *_ = small_tree()
        assert root.count() == 4
        assert root.depth() == 3

    def test_unique_view_ids(self):
        root, *_ = small_tree()
        ids = [v.view_id for v in root.iter_tree()]
        assert len(set(ids)) == len(ids)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            View(bounds=Rect(0, 0, 1, 1), bg_alpha=1.5)


class TestHitTest:
    def test_hits_deepest_clickable(self):
        root, _, ago, _ = small_tree()
        assert root.hit_test(150, 320) is ago

    def test_nonclickable_parent_not_hit(self):
        root, *_ = small_tree()
        # Point inside card but outside any clickable child.
        assert root.hit_test(50, 150) is None

    def test_later_sibling_wins_overlap(self):
        root = ViewGroup(bounds=Rect(0, 0, 100, 100))
        under = root.add_child(View(bounds=Rect(0, 0, 50, 50), clickable=True))
        over = root.add_child(View(bounds=Rect(0, 0, 50, 50), clickable=True))
        assert root.hit_test(25, 25) is over
        assert under is not over

    def test_invisible_view_not_hit(self):
        root, _, ago, _ = small_tree()
        ago.visibility = Visibility.INVISIBLE
        assert root.hit_test(150, 320) is None

    def test_out_of_bounds_misses(self):
        root, *_ = small_tree()
        assert root.hit_test(-5, -5) is None

    def test_click_runs_handler(self):
        calls = []
        v = View(bounds=Rect(0, 0, 10, 10), clickable=True,
                 on_click=lambda: calls.append(1))
        assert v.click()
        assert calls == [1]

    def test_click_without_handler_returns_false(self):
        assert not View(bounds=Rect(0, 0, 10, 10), clickable=True).click()
