"""Tests for accessibility events and the AccessibilityService."""

import numpy as np
import pytest

from repro.android import (
    AccessibilityEventType,
    AccessibilityService,
    Device,
    LayoutParams,
    View,
)
from repro.android.accessibility import (
    ScreenshotRinsedError,
    ScreenshotUnsupportedError,
)
from repro.android.events import TYPES_ALL_MASK, UI_UPDATE_TYPES
from repro.geometry import Offset, Rect


@pytest.fixture
def device():
    return Device(seed=1)


def attach_demo_app(device, fullscreen=False):
    root = View(bounds=Rect(0, 0, 360, 568))
    return device.window_manager.attach_app_window(root, "com.demo",
                                                   fullscreen=fullscreen)


class TestEventTypes:
    def test_exactly_23_types(self):
        assert len(AccessibilityEventType) == 23

    def test_types_are_distinct_bits(self):
        values = [int(t) for t in AccessibilityEventType]
        assert len(set(values)) == 23
        for v in values:
            assert v & (v - 1) == 0, f"{v:#x} is not a single bit"

    def test_windows_changed_code_matches_paper(self):
        assert int(AccessibilityEventType.TYPE_WINDOWS_CHANGED) == 0x00400000

    def test_all_mask_covers_everything(self):
        for t in AccessibilityEventType:
            assert TYPES_ALL_MASK & int(t)

    def test_ui_update_classification(self):
        assert AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED in UI_UPDATE_TYPES
        assert AccessibilityEventType.TYPE_TOUCH_INTERACTION_START not in UI_UPDATE_TYPES


class TestEventBus:
    def test_emit_stamps_clock_time(self, device):
        device.clock.advance(123)
        ev = device.emit_event(
            AccessibilityEventType.TYPE_WINDOWS_CHANGED, "com.demo")
        assert ev.timestamp_ms == 123
        assert ev.code == 0x00400000

    def test_mask_filters_delivery(self, device):
        got = []
        device.register_event_listener(
            int(AccessibilityEventType.TYPE_VIEW_CLICKED), got.append)
        device.emit_event(AccessibilityEventType.TYPE_VIEW_CLICKED, "a")
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "a")
        assert len(got) == 1

    def test_event_log_records_everything(self, device):
        device.emit_event(AccessibilityEventType.TYPE_VIEW_CLICKED, "a")
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "b")
        assert len(device.event_log) == 2
        device.clear_event_log()
        assert device.event_log == []


class TestServiceDelivery:
    def test_immediate_delivery_without_timeout(self, device):
        svc = AccessibilityService(device)
        got = []
        svc.on_event = got.append
        svc.connect()
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "com.demo")
        assert len(got) == 1

    def test_not_connected_receives_nothing(self, device):
        svc = AccessibilityService(device)
        got = []
        svc.on_event = got.append
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "com.demo")
        assert got == []

    def test_double_connect_does_not_duplicate(self, device):
        svc = AccessibilityService(device)
        got = []
        svc.on_event = got.append
        svc.connect()
        svc.connect()
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "com.demo")
        assert len(got) == 1

    def test_notification_timeout_coalesces(self, device):
        svc = AccessibilityService(device, notification_timeout_ms=200)
        got = []
        svc.on_event = got.append
        svc.connect()
        for _ in range(5):
            device.emit_event(
                AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
            device.clock.advance(10)
        assert got == []  # still within the batching window
        device.clock.advance(200)
        assert len(got) == 1  # one coalesced delivery

    def test_timeout_rejects_negative(self, device):
        with pytest.raises(ValueError):
            AccessibilityService(device, notification_timeout_ms=-1)

    def test_perf_counts_every_raw_event(self, device):
        from repro.android.device import PerfOp
        svc = AccessibilityService(device, notification_timeout_ms=200)
        svc.connect()
        for _ in range(7):
            device.emit_event(
                AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
        assert device.perf.count(PerfOp.EVENT_DELIVERED) == 7


class TestDisconnect:
    def test_no_delivery_after_disconnect(self, device):
        svc = AccessibilityService(device)
        got = []
        svc.on_event = got.append
        svc.connect()
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "com.demo")
        svc.disconnect()
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "com.demo")
        assert len(got) == 1
        assert not svc.connected

    def test_disconnect_cancels_pending_coalesced_event(self, device):
        # Regression: a coalescing timer armed before shutdown used to
        # deliver one more event after it.
        svc = AccessibilityService(device, notification_timeout_ms=200)
        got = []
        svc.on_event = got.append
        svc.connect()
        device.emit_event(
            AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
        svc.disconnect()
        device.clock.advance(1000)
        assert got == []

    def test_disconnect_is_idempotent_and_reconnectable(self, device):
        svc = AccessibilityService(device)
        got = []
        svc.on_event = got.append
        svc.connect()
        svc.disconnect()
        svc.disconnect()  # no error, no double-unregister
        svc.connect()
        device.emit_event(AccessibilityEventType.TYPE_WINDOWS_CHANGED, "com.demo")
        assert len(got) == 1

    def test_disconnect_without_connect_is_a_noop(self, device):
        AccessibilityService(device).disconnect()

    def test_unregister_unknown_listener_returns_false(self, device):
        assert not device.unregister_event_listener(lambda e: None)


class TestServiceStop:
    def test_stopped_service_ignores_later_events(self, device):
        from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy

        class NullDetector:
            def detect_screen(self, screen_image, refine=True,
                              conf_threshold=None):
                return []

        attach_demo_app(device)
        svc = DarpaService(device, NullDetector(),
                           config=DarpaConfig(ct_ms=200.0),
                           policy=ScreenshotPolicy(consent_given=True))
        svc.start()
        device.emit_event(
            AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
        svc.stop()
        # The settle timer for the pre-stop event is cancelled, and
        # post-stop events never reach the service at all.
        device.emit_event(
            AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
        device.clock.advance(1000)
        assert svc.stats.events_seen == 1
        assert svc.stats.screens_analyzed == 0
        assert svc.policy.captures == 0
        assert not svc.service.connected


class TestScreenshot:
    def test_screenshot_shape_matches_screen(self, device):
        attach_demo_app(device)
        svc = AccessibilityService(device)
        shot = svc.take_screenshot()
        assert shot.pixels.shape == (640, 360, 3)
        assert shot.package == "com.demo"

    def test_screenshot_requires_api_30(self):
        device = Device(api_level=29)
        svc = AccessibilityService(device)
        with pytest.raises(ScreenshotUnsupportedError):
            svc.take_screenshot()

    def test_rinse_blocks_later_access(self, device):
        attach_demo_app(device)
        svc = AccessibilityService(device)
        shot = svc.take_screenshot()
        shot.rinse()
        assert shot.rinsed
        with pytest.raises(ScreenshotRinsedError):
            _ = shot.pixels

    def test_rinse_idempotent(self, device):
        attach_demo_app(device)
        shot = AccessibilityService(device).take_screenshot()
        shot.rinse()
        shot.rinse()
        assert shot.rinsed


class TestOverlaysAndCalibration:
    def test_measure_window_offset_windowed(self, device):
        attach_demo_app(device, fullscreen=False)
        svc = AccessibilityService(device)
        assert svc.measure_window_offset() == Offset(0, 24)

    def test_measure_window_offset_fullscreen(self, device):
        attach_demo_app(device, fullscreen=True)
        svc = AccessibilityService(device)
        assert svc.measure_window_offset() == Offset(0, 0)

    def test_measure_leaves_no_overlay_behind(self, device):
        attach_demo_app(device)
        svc = AccessibilityService(device)
        svc.measure_window_offset()
        assert svc.overlays == []
        assert device.window_manager.overlays() == []

    def test_remove_all_overlays(self, device):
        attach_demo_app(device)
        svc = AccessibilityService(device)
        for _ in range(3):
            svc.add_overlay(View(bounds=Rect(0, 0, 1, 1)),
                            LayoutParams(width=10, height=10))
        assert svc.remove_all_overlays() == 3
        assert device.window_manager.overlays() == []

    def test_dispatch_click_reaches_app(self, device):
        root = View(bounds=Rect(0, 0, 360, 568))
        hits = []
        root.add_child(View(bounds=Rect(300, 40, 40, 40), clickable=True,
                            on_click=lambda: hits.append(1)))
        device.window_manager.attach_app_window(root, "com.demo",
                                                fullscreen=False)
        svc = AccessibilityService(device)
        svc.dispatch_click(320, 84)  # screen coords; offset (0, 24)
        assert hits == [1]
