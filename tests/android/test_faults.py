"""Tests for the deterministic fault-injection substrate."""

import numpy as np
import pytest

from repro.android import (
    AccessibilityEventType,
    AccessibilityService,
    Device,
    View,
)
from repro.android.faults import (
    DetectorCrashError,
    FaultInjector,
    FaultPlan,
    FaultyDetector,
    FaultyDevice,
    OverlayRejectedError,
    ScreenshotFailedError,
    ScreenshotThrottledError,
)
from repro.android.device import PerfOp
from repro.android.events import TYPES_ALL_MASK
from repro.android.window import LayoutParams
from repro.geometry import Rect


class TestFaultPlan:
    def test_default_plan_is_null(self):
        assert FaultPlan().is_null

    def test_any_rate_makes_it_non_null(self):
        assert not FaultPlan(screenshot_failure_rate=0.1).is_null
        assert not FaultPlan(screenshot_min_interval_ms=100.0).is_null
        assert not FaultPlan(event_storm_rate=0.5).is_null

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(screenshot_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(event_drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(event_storm_size=0)
        with pytest.raises(ValueError):
            FaultPlan(screenshot_min_interval_ms=-1.0)


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=7, screenshot_failure_rate=0.5,
                         event_drop_rate=0.3, detector_failure_rate=0.4)
        seq = []
        for _ in range(2):
            device = Device(seed=0)
            injector = FaultInjector(plan, device.clock)
            run = []
            for _ in range(50):
                try:
                    injector.check_screenshot_failure()
                    run.append("ok")
                except ScreenshotFailedError:
                    run.append("fail")
                run.append(injector.event_copies())
            seq.append(run)
        assert seq[0] == seq[1]

    def test_null_plan_draws_nothing(self):
        device = Device(seed=0)
        injector = FaultInjector(FaultPlan(), device.clock)
        for _ in range(20):
            injector.check_screenshot_throttle()
            injector.check_screenshot_failure()
            injector.check_overlay()
            injector.check_detector()
            assert injector.event_copies() == 1
        assert all(v == 0 for v in injector.counts.values())
        # No draw was consumed: the stream starts where a fresh one does.
        fresh = np.random.default_rng(0)
        assert float(injector.rng.random()) == float(fresh.random())


def app_device(plan=None):
    device = FaultyDevice(plan=plan, seed=0) if plan is not None else Device(seed=0)
    root = View(bounds=Rect(0, 0, 360, 568))
    device.window_manager.attach_app_window(root, "com.demo")
    return device


class TestFaultyDeviceEvents:
    def deliveries(self, plan, n=30):
        device = FaultyDevice(plan=plan, seed=0)
        got = []
        device.register_event_listener(TYPES_ALL_MASK, got.append)
        for _ in range(n):
            device.emit_event(
                AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
        return device, got

    def test_drop_all(self):
        device, got = self.deliveries(FaultPlan(event_drop_rate=1.0))
        assert got == []
        assert device.faults.counts["events_dropped"] == 30
        # The OS still logged the UI change; only delivery failed.
        assert len(device.event_log) == 30

    def test_duplicate_all(self):
        device, got = self.deliveries(FaultPlan(event_duplicate_rate=1.0))
        assert len(got) == 60
        assert device.faults.counts["events_duplicated"] == 30

    def test_storm(self):
        plan = FaultPlan(event_storm_rate=1.0, event_storm_size=8)
        device, got = self.deliveries(plan, n=5)
        assert len(got) == 40
        assert device.faults.counts["event_storms"] == 5

    def test_null_plan_matches_plain_device(self):
        faulty, got_faulty = self.deliveries(FaultPlan())
        plain = Device(seed=0)
        got_plain = []
        plain.register_event_listener(TYPES_ALL_MASK, got_plain.append)
        for _ in range(30):
            plain.emit_event(
                AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
        assert got_faulty == got_plain


class TestScreenshotFaults:
    def test_throttle_rejects_back_to_back_captures(self):
        device = app_device(FaultPlan(screenshot_min_interval_ms=500.0))
        svc = AccessibilityService(device)
        svc.take_screenshot(stub=True)
        with pytest.raises(ScreenshotThrottledError):
            svc.take_screenshot(stub=True)
        device.clock.advance(500)
        svc.take_screenshot(stub=True)  # window elapsed: allowed again
        assert device.faults.counts["screenshots_throttled"] == 1

    def test_throttled_capture_is_not_billed(self):
        device = app_device(FaultPlan(screenshot_min_interval_ms=500.0))
        svc = AccessibilityService(device)
        svc.take_screenshot(stub=True)
        with pytest.raises(ScreenshotThrottledError):
            svc.take_screenshot(stub=True)
        assert device.perf.count(PerfOp.SCREENSHOT) == 1

    def test_failed_capture_is_billed(self):
        # A failure happens after the OS did the capture work, so the
        # cost model charges it like a successful shot.
        device = app_device(FaultPlan(screenshot_failure_rate=1.0))
        svc = AccessibilityService(device)
        with pytest.raises(ScreenshotFailedError):
            svc.take_screenshot(stub=True)
        assert device.perf.count(PerfOp.SCREENSHOT) == 1
        assert device.faults.counts["screenshots_failed"] == 1

    def test_throttled_is_a_screenshot_failure(self):
        # Retry logic treats both transient kinds through one handler.
        assert issubclass(ScreenshotThrottledError, ScreenshotFailedError)


class TestOverlayFaults:
    def test_rejected_mount_raises(self):
        device = app_device(FaultPlan(overlay_rejection_rate=1.0))
        svc = AccessibilityService(device)
        with pytest.raises(OverlayRejectedError):
            svc.add_overlay(View(bounds=Rect(0, 0, 10, 10)),
                            LayoutParams(x=0, y=0, width=10, height=10))
        assert device.window_manager.overlays() == []
        assert device.faults.counts["overlays_rejected"] == 1


class FixedDetector:
    def __init__(self):
        self.calls = 0

    def detect_screen(self, screen_image, refine=True, conf_threshold=None):
        self.calls += 1
        return []


class TestFaultyDetector:
    def test_crash_injection(self):
        device = app_device(FaultPlan(detector_failure_rate=1.0))
        inner = FixedDetector()
        det = FaultyDetector(inner, device.faults)
        with pytest.raises(DetectorCrashError):
            det.detect_screen(np.zeros((4, 4, 3)))
        assert inner.calls == 0  # crashed before the model ran

    def test_latency_spike_reported(self):
        plan = FaultPlan(detector_spike_rate=1.0, detector_spike_ms=400.0,
                         detector_base_ms=100.0)
        device = app_device(plan)
        det = FaultyDetector(FixedDetector(), device.faults)
        det.detect_screen(np.zeros((4, 4, 3)))
        assert det.last_detect_ms == pytest.approx(500.0)
        assert device.faults.counts["latency_spikes"] == 1

    def test_base_latency_without_spike(self):
        plan = FaultPlan(detector_failure_rate=0.0, detector_base_ms=100.0)
        device = app_device(plan)
        det = FaultyDetector(FixedDetector(), device.faults)
        det.detect_screen(np.zeros((4, 4, 3)))
        assert det.last_detect_ms == pytest.approx(100.0)
