"""Tests for the FraudDroid-like heuristic baseline."""

import numpy as np
import pytest

from repro.android import Device, View, dump_view_hierarchy
from repro.android.adb import NodeInfo
from repro.android.resources import ResourceId, ResourceIdPolicy
from repro.baselines import FraudDroidDetector
from repro.datagen import build_aui_screen
from repro.datagen.specs import AuiType, SampleSpec
from repro.geometry import Rect


def node(entry, bounds, clickable=True, package="com.demo"):
    rid = f"{package}:id/{entry}" if entry else ""
    return NodeInfo(resource_id=rid, bounds=bounds, clickable=clickable,
                    text="", package=package, depth=1)


def spec(seed=7, **kw):
    defaults = dict(index=0, aui_type=AuiType.ADVERTISEMENT, has_ago=True,
                    n_upo=1, ago_central=True, upo_corner=True,
                    fullscreen=False, first_party=False, hard_upo=False,
                    style_seed=seed)
    defaults.update(kw)
    return SampleSpec(**defaults)


@pytest.fixture
def detector():
    return FraudDroidDetector()


class TestHeuristics:
    def test_readable_corner_close_flagged_as_upo(self, detector):
        nodes = [node("iv_close", Rect(320, 20, 24, 24))]
        dets = detector.detect_nodes(nodes)
        assert [d.label for d in dets] == ["UPO"]

    def test_central_ad_button_flagged_as_ago(self, detector):
        nodes = [node("btn_ad_open", Rect(80, 250, 200, 60)),
                 node("iv_close", Rect(320, 20, 24, 24))]
        labels = {d.label for d in detector.detect_nodes(nodes)}
        assert labels == {"AGO", "UPO"}

    def test_obfuscated_id_not_flagged(self, detector):
        nodes = [node("a1x", Rect(320, 20, 24, 24))]
        assert detector.detect_nodes(nodes) == []

    def test_empty_id_not_flagged(self, detector):
        nodes = [node("", Rect(320, 20, 24, 24))]
        assert detector.detect_nodes(nodes) == []

    def test_large_close_not_upo(self, detector):
        # Matching string but wrong placement features -> no flag.
        nodes = [node("btn_close", Rect(40, 200, 280, 200))]
        assert detector.detect_nodes(nodes) == []

    def test_central_close_not_upo(self, detector):
        nodes = [node("iv_close", Rect(170, 300, 24, 24))]
        assert detector.detect_nodes(nodes) == []

    def test_small_peripheral_ad_string_not_ago(self, detector):
        nodes = [node("ad_tag", Rect(330, 620, 20, 10))]
        assert detector.detect_nodes(nodes) == []

    def test_nonclickable_ignored(self, detector):
        nodes = [node("iv_close", Rect(320, 20, 24, 24), clickable=False)]
        assert detector.detect_nodes(nodes) == []

    def test_screen_verdict_requires_upo(self, detector):
        only_ago = [node("btn_ad_open", Rect(80, 250, 200, 60))]
        assert not detector.screen_is_aui(only_ago)
        with_upo = only_ago + [node("btn_skip", Rect(10, 14, 40, 18))]
        assert detector.screen_is_aui(with_upo)


class TestAgainstGeneratedScreens:
    """The Table VI mechanism: id policy decides FraudDroid's fate."""

    def _verdict(self, policy):
        state = build_aui_screen(spec(), package="com.demo", id_policy=policy)
        device = Device()
        device.window_manager.attach_app_window(state.root, "com.demo")
        nodes = dump_view_hierarchy(device.window_manager)
        return FraudDroidDetector().screen_is_aui(nodes)

    def test_readable_app_detected(self):
        assert self._verdict(ResourceIdPolicy.READABLE)

    def test_obfuscated_app_missed(self):
        assert not self._verdict(ResourceIdPolicy.OBFUSCATED)

    def test_dynamic_ids_missed(self):
        assert not self._verdict(ResourceIdPolicy.DYNAMIC)

    def test_recall_collapses_at_realistic_obfuscation_mix(self):
        """Across a readable/obfuscated/dynamic app mix the heuristic
        detects roughly the readable fraction — the paper's Table VI
        mechanism in miniature."""
        rng = np.random.default_rng(5)
        policies = ([ResourceIdPolicy.READABLE] * 18
                    + [ResourceIdPolicy.OBFUSCATED] * 57
                    + [ResourceIdPolicy.DYNAMIC] * 25)
        detector = FraudDroidDetector()
        caught = 0
        for i, policy in enumerate(policies):
            state = build_aui_screen(spec(seed=100 + i, upo_corner=True),
                                     package="com.demo", id_policy=policy)
            device = Device()
            device.window_manager.attach_app_window(state.root, "com.demo")
            nodes = dump_view_hierarchy(device.window_manager)
            caught += detector.screen_is_aui(nodes)
        # ~18% readable, and not all readable UPOs pass placement.
        assert caught <= 20
        assert caught >= 5
