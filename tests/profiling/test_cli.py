"""``repro profile``: sources, exit codes, and byte-clean --fold output.

Exit-code contract (mirrors ``repro regress``): 0 = ok/identical,
1 = profiles differ (``--diff`` only), 2 = usage or unreadable source.
``--fold`` writes nothing but folded stacks to stdout, and loading a
run directory is byte-identical whether the artifacts are merged, raw
shard parts, or the un-folded trace/metrics JSONL lines.
"""

import json

import pytest

from repro.bench import build_runtime_fleet, run_darpa_over_fleet_parallel
from repro.profiling import Profile, load_profile, run_profile
from repro.profiling.io import ProfileSourceError
from tests.profiling.test_diff import fold


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("run")
    sessions = build_runtime_fleet(n_apps=3, seed=5, duration_ms=5_000.0)
    run_darpa_over_fleet_parallel(
        sessions, "oracle", ct_ms=200.0, mode="full",
        n_workers=2, n_shards=3, trace_dir=str(trace_dir))
    return trace_dir


def write_profile(tmp_path, name, profile):
    path = tmp_path / name
    path.write_text(profile.to_json())
    return str(path)


class TestLoadProfile:
    def test_run_directory_prefers_merged_profile(self, run_dir):
        loaded = load_profile(str(run_dir))
        with open(run_dir / "profile.json") as fp:
            assert loaded == Profile.from_dict(json.load(fp))
        assert loaded.sessions == 3

    def test_trace_jsonl_fold_matches_merged_profile(self, run_dir,
                                                     tmp_path):
        # Deleting profile.json forces the trace.jsonl fold path; the
        # two sources must agree byte for byte.
        for name in ("trace.jsonl", "metrics.jsonl"):
            (tmp_path / name).write_bytes((run_dir / name).read_bytes())
        refolded = load_profile(str(tmp_path))
        assert refolded.to_json() == load_profile(str(run_dir)).to_json()

    def test_jsonl_file_source(self, run_dir):
        loaded = load_profile(str(run_dir / "trace.jsonl"))
        assert loaded.sessions == 3

    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(ProfileSourceError):
            load_profile(str(tmp_path / "nope.json"))
        with pytest.raises(ProfileSourceError):
            load_profile(str(tmp_path))  # empty dir: no artifacts

    def test_json_without_profile_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"benchmark": "x"}\n')
        with pytest.raises(ProfileSourceError):
            load_profile(str(path))


class TestExitCodes:
    def test_summary_exits_zero(self, run_dir, capsys):
        assert run_profile(source=str(run_dir)) == 0
        out = capsys.readouterr().out
        assert "3 session(s)" in out
        assert "top" in out

    def test_missing_source_is_usage_error(self, tmp_path, capsys):
        assert run_profile(source=str(tmp_path / "nope")) == 2
        assert run_profile() == 2
        assert "profile:" in capsys.readouterr().err

    def test_diff_identical_exits_zero(self, tmp_path, capsys):
        a = write_profile(tmp_path, "a.json", fold())
        b = write_profile(tmp_path, "b.json", fold())
        assert run_profile(diff=(a, b)) == 0
        assert "no differing frames" in capsys.readouterr().out

    def test_diff_differing_exits_one(self, tmp_path, capsys):
        a = write_profile(tmp_path, "a.json", fold(100.0))
        b = write_profile(tmp_path, "b.json", fold(200.0))
        assert run_profile(diff=(a, b)) == 1
        assert "session;event;analyze;inference" in capsys.readouterr().out

    def test_diff_unreadable_exits_two(self, tmp_path):
        a = write_profile(tmp_path, "a.json", fold())
        assert run_profile(diff=(a, str(tmp_path / "nope.json"))) == 2


class TestFoldOutput:
    def test_fold_stdout_is_exactly_the_folded_text(self, run_dir,
                                                    capsys):
        assert run_profile(source=str(run_dir), fold=True) == 0
        out = capsys.readouterr().out
        assert out == load_profile(str(run_dir)).folded_text()
        for line in out.splitlines():
            stack, value = line.rsplit(" ", 1)
            assert int(value) >= 0
            assert stack.startswith("session")

    def test_json_out_writes_canonical_document(self, run_dir, tmp_path):
        out = tmp_path / "profile.json"
        assert run_profile(source=str(run_dir), json_out=str(out)) == 0
        assert out.read_text() == load_profile(str(run_dir)).to_json()


class TestCompletenessWarnings:
    def test_dropped_and_orphans_warn_on_stderr(self, tmp_path, capsys):
        prof = fold()
        prof.dropped_spans, prof.orphan_spans = 4, 2
        path = write_profile(tmp_path, "partial.json", prof)
        assert run_profile(source=path) == 0
        err = capsys.readouterr().err
        assert "4 span(s) dropped" in err
        assert "undercount" in err
        assert "2 orphan span(s)" in err

    def test_clean_profile_stays_silent(self, tmp_path, capsys):
        path = write_profile(tmp_path, "clean.json", fold())
        assert run_profile(source=path) == 0
        assert capsys.readouterr().err == ""
