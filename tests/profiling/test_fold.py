"""Folding span dumps into Profiles: stacks, plan steps, orphans.

The fold contract: every span becomes exactly one frame keyed by its
parent-chain stack path; CPU comes from the span's own op attributions
(never rolled up); inference spans with a ``plan_ops`` attribute grow
per-step child frames whose microseconds sum back to the span's total
exactly (the rounding residue stays on the span's own frame).
"""

import dataclasses

import pytest

from repro.android.device import DeviceProfile
from repro.core.observability import (
    OVERHEAD_STEP,
    PerfMeter,
    PerfOp,
    SimulatedClock,
    Tracer,
)
from repro.profiling import (
    PLAN_OPS_ATTR,
    dropped_from_metrics,
    profile_from_result,
    profile_from_spans,
    profile_from_results,
)


def span(name, span_id, parent_id=None, ops=None, attributes=None):
    return {
        "name": name, "span_id": span_id, "parent_id": parent_id,
        "trace_id": "t", "start_ms": 0.0, "end_ms": 1.0,
        "attributes": attributes or {}, "ops": ops or {},
    }


SESSION = [
    span("session", 1),
    span("event", 2, 1, ops={PerfOp.EVENT_DELIVERED.value: 2}),
    span("analyze", 3, 2, ops={PerfOp.SCREENSHOT.value: 1}),
    span("inference", 4, 3, ops={PerfOp.INFERENCE.value: 1}),
]


class TestStacks:
    def test_stack_paths_follow_parent_chain(self):
        prof = profile_from_spans(SESSION)
        assert sorted(prof.frames) == [
            ("session",),
            ("session", "event"),
            ("session", "event", "analyze"),
            ("session", "event", "analyze", "inference"),
        ]
        assert prof.sessions == 1
        assert prof.orphan_spans == 0

    def test_cpu_is_innermost_attribution_in_exact_microseconds(self):
        prof = profile_from_spans(SESSION)  # default DeviceProfile costs
        frames = prof.frames
        assert frames[("session",)].cpu_us == 0
        assert frames[("session", "event")].cpu_us == 600        # 2 x 0.3ms
        assert frames[("session", "event", "analyze")].cpu_us == 30_000
        assert frames[("session", "event", "analyze",
                       "inference")].cpu_us == 100_000

    def test_device_profile_scales_the_fold(self):
        costly = dataclasses.replace(DeviceProfile(), inference_cpu_ms=250.0)
        prof = profile_from_spans(SESSION, profile=costly)
        assert prof.frames[("session", "event", "analyze",
                            "inference")].cpu_us == 250_000

    def test_semicolons_in_names_are_sanitized(self):
        prof = profile_from_spans([span("a;b", 1)])
        assert ("a_b",) in prof.frames


class TestPlanOps:
    PLAN = [
        {"step": "conv0/gemm", "macs": 3_000, "cpu_ms": 75.0},
        {"step": "conv1/gemm", "macs": 1_000, "cpu_ms": 25.0},
    ]

    def fold(self, plan):
        spans = [
            span("session", 1),
            span("inference", 2, 1, ops={PerfOp.INFERENCE.value: 1},
                 attributes={PLAN_OPS_ATTR: plan}),
        ]
        return profile_from_spans(spans)

    def test_steps_become_child_frames_with_macs(self):
        prof = self.fold(self.PLAN)
        conv0 = prof.frames[("session", "inference", "conv0/gemm")]
        assert (conv0.cpu_us, conv0.macs) == (75_000, 3_000)
        conv1 = prof.frames[("session", "inference", "conv1/gemm")]
        assert (conv1.cpu_us, conv1.macs) == (25_000, 1_000)
        assert prof.mac_share(("session", "inference",
                               "conv0/gemm")) == pytest.approx(0.75)

    def test_subtree_total_equals_span_total_exactly(self):
        # Per-step rounding residue stays on the span's own frame, so
        # the inference subtree sums to the span's 100ms exactly.
        plan = [
            {"step": "conv0/gemm", "macs": 1, "cpu_ms": 100.0 / 3.0},
            {"step": "conv1/gemm", "macs": 1, "cpu_ms": 100.0 / 3.0},
            {"step": "conv2/gemm", "macs": 1, "cpu_ms": 100.0 / 3.0},
        ]
        prof = self.fold(plan)
        subtree = sum(stats.cpu_us for stack, stats in prof.frames.items()
                      if stack[:2] == ("session", "inference"))
        assert subtree == 100_000

    def test_overhead_step_folds_like_any_other(self):
        plan = [
            {"step": "conv0/gemm", "macs": 4_000, "cpu_ms": 80.0},
            {"step": OVERHEAD_STEP, "macs": 0, "cpu_ms": 20.0},
        ]
        prof = self.fold(plan)
        overhead = prof.frames[("session", "inference", OVERHEAD_STEP)]
        assert (overhead.cpu_us, overhead.macs) == (20_000, 0)

    def test_non_list_plan_ops_is_ignored(self):
        spans = [span("session", 1,
                      attributes={PLAN_OPS_ATTR: "not-a-plan"})]
        prof = profile_from_spans(spans)
        assert sorted(prof.frames) == [("session",)]


class TestOrphans:
    def test_broken_parent_chain_roots_and_counts(self):
        spans = [
            span("session", 1),
            # Parent 99 was evicted before export: orphaned, re-rooted.
            span("inference", 4, 99, ops={PerfOp.INFERENCE.value: 1}),
        ]
        prof = profile_from_spans(spans, dropped_spans=3)
        assert prof.orphan_spans == 1
        assert prof.dropped_spans == 3
        assert prof.frames[("inference",)].cpu_us == 100_000

    def test_transitive_orphans_root_at_surviving_ancestor(self):
        spans = [
            span("analyze", 3, 99),
            span("inference", 4, 3, ops={PerfOp.INFERENCE.value: 1}),
        ]
        prof = profile_from_spans(spans)
        # Only the chain break itself is an orphan; its child keeps a
        # stack rooted at the surviving ancestor.
        assert prof.orphan_spans == 1
        assert ("analyze", "inference") in prof.frames


class TestRealTracedRun:
    def traced(self):
        clock = SimulatedClock()
        tracer = Tracer(clock, trace_id="t")
        meter = PerfMeter(DeviceProfile())
        tracer.observe_perf(meter)
        root = tracer.start_span("session")
        with tracer.span("analyze"):
            meter.record(PerfOp.SCREENSHOT)
            with tracer.span("inference"):
                meter.record(PerfOp.INFERENCE)
        clock.advance(60_000)
        tracer.end_span(root)
        return tracer, meter

    def test_fold_matches_meter_cpu_exactly(self):
        tracer, meter = self.traced()
        prof = profile_from_spans(tracer.export())
        total_ms = sum(
            n * cost for n, cost in [(1, 30.0), (1, 100.0)])
        assert prof.total_cpu_us == int(round(total_ms * 1000.0))

    def test_result_fold_reads_dropped_from_metrics(self):
        class Result:
            spans = SESSION
            metrics = {"counters": {"darpa.trace.dropped_spans": 7}}

        prof = profile_from_result(Result())
        assert prof.dropped_spans == 7
        assert dropped_from_metrics(Result.metrics) == 7
        assert dropped_from_metrics({}) == 0
        assert dropped_from_metrics({"counters": "bogus"}) == 0

    def test_results_fold_merges_in_any_order(self):
        class Result:
            def __init__(self, spans):
                self.spans = spans
                self.metrics = {}

        results = [Result(SESSION), Result(SESSION[:2])]
        forward = profile_from_results(results)
        backward = profile_from_results(list(reversed(results)))
        assert forward.to_json() == backward.to_json()
        assert forward.sessions == 2
