"""Differential attribution: diff(A, A) is empty, slowdowns rank first.

The headline contract: inflate one cost-model constant, re-fold the
same span dump, and the diff's top-ranked frame names the stage that
got slower — that attribution is what ``repro regress --explain``
prints when the benchmark gate trips.
"""

import dataclasses
import json

import pytest

from repro.android.device import DeviceProfile
from repro.bench.provenance import build_manifest
from repro.bench.regress import main as regress_main
from repro.profiling import (
    PROFILE_KEY,
    Profile,
    diff_profiles,
    profile_from_spans,
    report_lines,
)
from tests.profiling.test_fold import SESSION


def fold(inference_cpu_ms=100.0):
    device = dataclasses.replace(DeviceProfile(),
                                 inference_cpu_ms=inference_cpu_ms)
    return profile_from_spans(SESSION, profile=device)


class TestDiffSemantics:
    def test_diff_of_identical_profiles_is_empty(self):
        diff = diff_profiles(fold(), fold())
        assert diff.empty
        assert diff.frames == ()
        assert diff.delta_cpu_us == 0
        assert "no differing frames" in report_lines(diff)[-1]

    def test_statuses(self):
        base, fresh = Profile(), Profile()
        base.observe(("gone",), cpu_us=10)
        base.observe(("same",), cpu_us=5)
        fresh.observe(("same",), cpu_us=5)
        fresh.observe(("born",), cpu_us=20)
        diff = diff_profiles(base, fresh)
        by_stack = {d.stack: d for d in diff.frames}
        assert set(by_stack) == {"gone", "born"}
        assert by_stack["gone"].status == "vanished"
        assert by_stack["gone"].delta_cpu_us == -10
        assert by_stack["born"].status == "new"
        assert by_stack["born"].rel is None

    def test_ranked_by_absolute_delta_then_stack(self):
        base, fresh = Profile(), Profile()
        for stack, b_us, f_us in [(("a",), 100, 90),
                                  (("b",), 100, 200),
                                  (("c",), 0, 10)]:
            base.observe(stack, cpu_us=b_us)
            fresh.observe(stack, cpu_us=f_us)
        diff = diff_profiles(base, fresh)
        assert [d.stack for d in diff.frames] == ["b", "a", "c"]
        assert [d.stack for d in diff.top(1)] == ["b"]

    def test_count_only_change_still_surfaces(self):
        base, fresh = Profile(), Profile()
        base.observe(("a",), cpu_us=10, count=1)
        fresh.observe(("a",), cpu_us=10, count=2)
        diff = diff_profiles(base, fresh)
        assert [d.stack for d in diff.frames] == ["a"]
        assert diff.frames[0].delta_cpu_us == 0

    def test_to_dict_round_trips_through_json(self):
        diff = diff_profiles(fold(), fold(150.0))
        payload = json.loads(json.dumps(diff.to_dict()))
        assert payload["frames"][0]["status"] == "changed"
        assert payload["delta_cpu_us"] == diff.delta_cpu_us

    def test_dropped_spans_warn_in_report(self):
        base, fresh = fold(), fold(150.0)
        fresh.dropped_spans = 9
        lines = report_lines(diff_profiles(base, fresh))
        assert any("dropped spans" in line and "undercount" in line
                   for line in lines)


class TestInducedSlowdown:
    def test_inflated_inference_is_top_ranked(self):
        # Same spans, 2x inference cost: the regression's cause must be
        # the single top-ranked delta, with the right magnitude.
        diff = diff_profiles(fold(100.0), fold(200.0))
        assert not diff.empty
        top = diff.frames[0]
        assert top.stack == "session;event;analyze;inference"
        assert top.status == "changed"
        assert top.delta_cpu_us == 100_000
        assert top.rel == pytest.approx(1.0)
        # Nothing else moved: the attribution is surgical.
        assert len(diff.frames) == 1
        assert diff.delta_cpu_us == 100_000

    def test_report_names_the_culprit_first(self):
        lines = report_lines(diff_profiles(fold(100.0), fold(200.0)))
        assert lines[-1].endswith("session;event;analyze;inference")
        assert "+100.000 ms" in lines[-1]


def bench_payload(inference_cpu_ms):
    """A minimal BENCH-style payload whose cpu number and embedded
    profile both track the (possibly inflated) inference cost."""
    profile = fold(inference_cpu_ms)
    return {
        "manifest": build_manifest("diff-fixture-v1", 0, {"ct_ms": 200.0}),
        "benchmark": "explain-fixture",
        "cpu_pct": 55.0 * (inference_cpu_ms / 100.0),
        PROFILE_KEY: profile.to_dict(),
    }


class TestRegressExplain:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return str(path)

    def test_explain_attributes_the_regression(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "baseline.json", bench_payload(100.0))
        fresh = self.write(tmp_path, "fresh.json", bench_payload(200.0))
        out = tmp_path / "attribution.json"
        code = regress_main(["--baseline", baseline, "--fresh", fresh,
                             "--explain-out", str(out)])
        assert code == 1  # the gate still gates
        err = capsys.readouterr().err
        assert "attribution (embedded profile diff)" in err
        # Top-ranked line names the inflated stage.
        assert "session;event;analyze;inference" in err
        report = json.loads(out.read_text())
        assert report["violations"]
        top = report["attribution"]["frames"][0]
        assert top["stack"] == "session;event;analyze;inference"
        assert top["delta_cpu_us"] == 100_000

    def test_profile_block_never_enters_the_value_diff(self, tmp_path):
        # Identical numbers, wildly different profiles: still passes.
        base = bench_payload(100.0)
        fresh = bench_payload(100.0)
        fresh[PROFILE_KEY] = Profile().to_dict()
        code = regress_main([
            "--baseline", self.write(tmp_path, "b.json", base),
            "--fresh", self.write(tmp_path, "f.json", fresh)])
        assert code == 0

    def test_explain_without_profile_blocks_degrades(self, tmp_path,
                                                     capsys):
        base = bench_payload(100.0)
        fresh = bench_payload(200.0)
        del base[PROFILE_KEY], fresh[PROFILE_KEY]
        code = regress_main([
            "--baseline", self.write(tmp_path, "b.json", base),
            "--fresh", self.write(tmp_path, "f.json", fresh),
            "--explain"])
        assert code == 1
        assert "cannot attribute" in capsys.readouterr().err

    def test_malformed_profile_block_is_noted_not_fatal(self, tmp_path,
                                                        capsys):
        base = bench_payload(100.0)
        fresh = bench_payload(200.0)
        fresh[PROFILE_KEY] = {"version": 999}
        code = regress_main([
            "--baseline", self.write(tmp_path, "b.json", base),
            "--fresh", self.write(tmp_path, "f.json", fresh),
            "--explain"])
        assert code == 1
        assert "malformed profile block" in capsys.readouterr().err
