"""The Profile merge algebra and serialization contracts.

Frame state is all-integer, so merge must be exactly associative and
commutative — any merge tree over the same parts serializes to the
same bytes.  These are the unit-level pins; ``tests/proptest.py``
fuzzes the same invariants over random shardings.
"""

import pytest

from repro.profiling import (
    PROFILE_VERSION,
    Profile,
    split_key,
    stack_key,
)


def make(frames):
    """A Profile from {stack_tuple: (count, cpu_us, macs)}."""
    out = Profile()
    out.sessions = 1
    for stack, (count, cpu_us, macs) in frames.items():
        out.observe(stack, cpu_us=cpu_us, count=count, macs=macs)
    return out


A_FRAMES = {
    ("session", "event", "analyze"): (3, 90_000, 0),
    ("session", "event", "analyze", "inference"): (2, 200_000, 1_000),
    ("session",): (1, 2_100, 0),
}
B_FRAMES = {
    ("session", "event", "analyze", "inference"): (1, 100_000, 500),
    ("session", "event", "debounce"): (4, 1_200, 0),
}
C_FRAMES = {
    ("session",): (1, 300, 0),
}


class TestMergeAlgebra:
    def test_associative_byte_identical(self):
        left = make(A_FRAMES).merge(make(B_FRAMES)).merge(make(C_FRAMES))
        right = make(A_FRAMES).merge(make(B_FRAMES).merge(make(C_FRAMES)))
        assert left.to_json() == right.to_json()

    def test_commutative_byte_identical(self):
        ab = make(A_FRAMES).merge(make(B_FRAMES))
        ba = make(B_FRAMES).merge(make(A_FRAMES))
        assert ab.to_json() == ba.to_json()

    def test_empty_profile_is_identity(self):
        merged = Profile().merge(make(A_FRAMES))
        assert merged == make(A_FRAMES)
        assert make(A_FRAMES).merge(Profile()) == make(A_FRAMES)

    def test_merge_sums_completeness_counters(self):
        a, b = make(A_FRAMES), make(B_FRAMES)
        a.dropped_spans, a.orphan_spans = 2, 1
        b.dropped_spans = 3
        merged = a.merge(b)
        assert merged.sessions == 2
        assert merged.dropped_spans == 5
        assert merged.orphan_spans == 1

    def test_merge_returns_self(self):
        a = make(A_FRAMES)
        assert a.merge(make(B_FRAMES)) is a


class TestObserve:
    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError):
            Profile().observe(())

    def test_rejects_separator_in_segment(self):
        with pytest.raises(ValueError):
            Profile().observe(("session", "a;b"))

    def test_rejects_empty_segment(self):
        with pytest.raises(ValueError):
            Profile().observe(("session", ""))

    def test_accumulates_repeat_observations(self):
        p = Profile()
        p.observe(("a",), cpu_us=10, count=1, macs=5)
        p.observe(("a",), cpu_us=20, count=2, macs=7)
        stats = p.frames[("a",)]
        assert (stats.count, stats.cpu_us, stats.macs) == (3, 30, 12)


class TestReading:
    def test_totals(self):
        p = make(A_FRAMES)
        assert p.total_cpu_us == 90_000 + 200_000 + 2_100
        assert p.total_macs == 1_000

    def test_top_ranked_by_cpu_then_stack(self):
        p = make(A_FRAMES)
        tops = [stack for stack, _ in p.top(10)]
        assert tops == [
            "session;event;analyze;inference",
            "session;event;analyze",
            "session",
        ]
        assert len(p.top(1)) == 1

    def test_mac_share(self):
        p = make(A_FRAMES).merge(make(B_FRAMES))
        stack = ("session", "event", "analyze", "inference")
        assert p.mac_share(stack) == pytest.approx(1.0)
        assert p.mac_share(("session",)) == 0.0
        assert Profile().mac_share(stack) == 0.0


class TestSerialization:
    def test_round_trip_is_exact(self):
        p = make(A_FRAMES)
        p.dropped_spans, p.orphan_spans = 4, 2
        again = Profile.from_dict(p.to_dict())
        assert again == p
        assert again.to_json() == p.to_json()

    def test_version_stamped_and_checked(self):
        payload = make(A_FRAMES).to_dict()
        assert payload["version"] == PROFILE_VERSION
        payload["version"] = PROFILE_VERSION + 1
        with pytest.raises(ValueError):
            Profile.from_dict(payload)
        with pytest.raises(ValueError):
            Profile.from_dict({"frames": {}})

    def test_from_dict_requires_frames_mapping(self):
        with pytest.raises(ValueError):
            Profile.from_dict({"version": PROFILE_VERSION})

    def test_folded_lines_sorted_and_parseable(self):
        p = make(A_FRAMES).merge(make(B_FRAMES))
        lines = list(p.folded_lines())
        assert lines == sorted(lines)
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert p.frames[split_key(stack)].cpu_us == int(value)
        assert p.folded_text() == "".join(l + "\n" for l in lines)

    def test_json_text_ends_with_newline(self):
        assert make(A_FRAMES).to_json().endswith("}\n")


def test_stack_key_round_trips():
    stack = ("session", "event", "analyze")
    assert split_key(stack_key(stack)) == stack
