"""``repro flow`` CLI: exit codes, baseline plumbing, determinism."""

import json
import os
import random

import pytest

from repro.analysis.flow.cli import build_parser, main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CHAIN = os.path.join(FIXTURES, "chain")
SANITIZED = os.path.join(FIXTURES, "sanitized")


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.paths == ["src"]
        assert args.format == "text" and args.baseline is None

    def test_bad_format_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--format", "xml"])
        assert excinfo.value.code == 2


class TestExitCodes:
    def test_flow_free_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("def f(x):\n    return x\n")
        assert main([str(tmp_path)]) == 0
        assert "clean: no unsanitized flows" in capsys.readouterr().out

    def test_final_src_tree_exits_zero(self, capsys):
        # The acceptance bar: src/ carries zero unbaselined flows.
        assert main(["src", "--no-config"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_fixture_flow_exits_one(self, capsys):
        assert main([CHAIN]) == 1
        out = capsys.readouterr().out
        assert "DF001" in out and "[source]" in out and "[sink]" in out
        assert "1 flow(s)" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_malformed_config_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "pyproject.toml"
        bad.write_text("[tool.darpaflow]\nsurprise = true\n")
        assert main(["--config", str(bad), CHAIN]) == 2
        assert "bad config" in capsys.readouterr().err

    def test_update_baseline_without_baseline_exits_two(self, capsys):
        assert main(["--update-baseline", CHAIN]) == 2
        assert "--baseline" in capsys.readouterr().err


class TestBaselineFlow:
    def test_update_then_gate(self, tmp_path, capsys):
        baseline = str(tmp_path / "flow-baseline.json")
        assert main([CHAIN, "--baseline", baseline,
                     "--update-baseline"]) == 0
        assert "accepts 1 flow(s)" in capsys.readouterr().out
        # Gating against the fresh baseline is clean...
        assert main([CHAIN, "--baseline", baseline]) == 0
        assert "1 baselined flow(s) not shown" in capsys.readouterr().out
        # ...but a flow the baseline has never seen still fails.
        assert main([CHAIN, SANITIZED, "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "DF003" in out and "DF001" not in out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "flow-baseline.json"
        bad.write_text("{}")
        assert main([CHAIN, "--baseline", str(bad)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_committed_repo_baseline_gates_src_clean(self, capsys):
        assert main(["src", "--baseline", "flow-baseline.json"]) == 0
        capsys.readouterr()


class TestReports:
    def test_json_output_file(self, tmp_path):
        report = tmp_path / "flow.json"
        assert main([CHAIN, "--format", "json",
                     "--output", str(report)]) == 1
        payload = json.loads(report.read_text())
        assert payload["count"] == 1 and payload["baselined"] == 0
        finding = payload["findings"][0]
        assert finding["rule"] == "DF001"
        assert finding["source"] == "time.time"
        assert finding["sink"] == "repro.ops.routes.canonical_bytes"
        assert len(finding["trace"]) == 11
        assert all(set(hop) == {"path", "line", "note"}
                   for hop in finding["trace"])

    def test_reports_byte_identical_for_shuffled_paths(self, tmp_path):
        trees = [CHAIN, SANITIZED, os.path.join(CHAIN, "chain.py")]
        shuffled = list(trees)
        random.Random(7).shuffle(shuffled)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["--format", "json", "--output", str(a)] + trees) == 1
        assert main(["--format", "json", "--output", str(b)]
                    + shuffled) == 1
        assert a.read_bytes() == b.read_bytes()


class TestReproCliDelegation:
    def test_repro_flow_subcommand(self, capsys):
        from repro.cli import main as repro_main
        assert repro_main(["flow", CHAIN]) == 1
        assert "DF001" in capsys.readouterr().out

    def test_repro_flow_baseline_plumbing(self, tmp_path, capsys):
        from repro.cli import main as repro_main
        baseline = str(tmp_path / "flow-baseline.json")
        assert repro_main(["flow", CHAIN, "--baseline", baseline,
                           "--update-baseline"]) == 0
        capsys.readouterr()
        assert repro_main(["flow", CHAIN, "--baseline", baseline]) == 0
        assert "baselined flow(s) not shown" in capsys.readouterr().out
