"""Fixture: sanitized and unsanitized flows side by side.

- ``emit_sorted_listing`` — a listing flow erased by ``sorted()``;
- ``emit_marked_clock`` — a wall-clock flow erased by the inline
  ``# darpaflow: sanitized=`` marker;
- ``emit_raw_listing`` — the SAME helper chain as the sorted variant,
  minus the sanitizer: the one flow this file must report, proving
  the clean siblings are near-misses rather than blind spots.
"""

import os
import time

from repro.ops.routes import canonical_bytes


def listing(root):
    names = os.listdir(root)
    return names


def emit_sorted_listing(root):
    ordered = sorted(listing(root))
    return canonical_bytes({"names": ordered})


def emit_marked_clock():
    stamp = time.time()  # darpaflow: sanitized=fixture-reviewed
    return canonical_bytes({"stamp": stamp})


def emit_raw_listing(root):
    return canonical_bytes({"names": listing(root)})
