"""Fixture: one interprocedural wall-clock -> canonical_bytes flow.

The ``time.time()`` value crosses two helper functions before landing
in the sink, so a syntactic rule (darpalint DL001 aside) cannot see
the connection — darpaflow must report it with the complete hop chain.
Line numbers in this file are pinned by the trace-exactness test:
append only.
"""

import time

from repro.ops.routes import canonical_bytes


def read_clock():
    stamp = time.time()
    return stamp


def wrap(value):
    payload = {"stamp": value}
    return payload


def emit():
    raw = read_clock()
    enriched = wrap(raw)
    return canonical_bytes(enriched)
