"""Program graph: module naming, function registry, callee resolution."""

import os
import textwrap

from repro.analysis.flow import build_graph, module_name_for

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


class TestModuleNames:
    def test_package_layout_drives_the_dotted_name(self):
        # The canonical name ignores where the scan started from.
        assert module_name_for("src/repro/ops/routes.py") == \
            "repro.ops.routes"
        assert module_name_for("src/repro/analysis/flow/graph.py") == \
            "repro.analysis.flow.graph"

    def test_init_py_names_the_package_itself(self):
        assert module_name_for("src/repro/ops/__init__.py") == "repro.ops"

    def test_loose_file_is_its_stem(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n")
        assert module_name_for(str(loose)) == "script"


class TestRegistry:
    def test_functions_and_methods_are_registered(self, tmp_path):
        source = textwrap.dedent("""\
            def top(a, b):
                return a

            class Box:
                def get(self, key):
                    return key
        """)
        (tmp_path / "mod.py").write_text(source)
        graph = build_graph([str(tmp_path)])
        assert "mod.top" in graph.functions
        assert "mod.Box.get" in graph.functions
        assert graph.functions["mod.top"].params == ("a", "b")
        assert graph.functions["mod.Box.get"].params == ("self", "key")

    def test_nested_defs_stay_unknown_calls(self, tmp_path):
        # Documented false-negative edge: closures are not summarized.
        source = "def outer():\n    def inner():\n        pass\n"
        (tmp_path / "mod.py").write_text(source)
        graph = build_graph([str(tmp_path)])
        assert "mod.outer" in graph.functions
        assert "mod.outer.inner" not in graph.functions
        assert "mod.inner" not in graph.functions

    def test_parse_error_is_recorded_not_fatal(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text("def broken(:\n")
        graph = build_graph([str(tmp_path)])
        assert len(graph.modules) == 1
        assert len(graph.parse_errors) == 1
        assert "does not parse" in next(iter(graph.parse_errors.values()))


class TestResolution:
    def test_self_calls_resolve_within_the_class(self, tmp_path):
        source = textwrap.dedent("""\
            class Writer:
                def _encode(self, value):
                    return value

                def emit(self, value):
                    return self._encode(value)
        """)
        (tmp_path / "mod.py").write_text(source)
        graph = build_graph([str(tmp_path)])
        hit = graph.resolve_callee("self._encode", "mod", "Writer")
        assert hit is not None and hit.qualname == "mod.Writer._encode"

    def test_module_local_and_unknown_callees(self, tmp_path):
        (tmp_path / "mod.py").write_text("def helper():\n    pass\n")
        graph = build_graph([str(tmp_path)])
        assert graph.resolve_callee("helper", "mod", None) is not None
        assert graph.resolve_callee("missing", "mod", None) is None
        assert graph.resolve_callee(None, "mod", None) is None

    def test_fixture_chain_resolves_across_the_repo_graph(self):
        graph = build_graph([os.path.join(FIXTURES, "chain"), "src/repro"])
        # The fixture's alias-resolved sink name is a real function in
        # the same graph — exactly what the sink-before-callee check
        # ordering in the taint engine protects.
        assert graph.resolve_callee("repro.ops.routes.canonical_bytes",
                                    "chain", None) is not None
