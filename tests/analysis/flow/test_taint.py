"""Taint engine: traces, sanitizers, categories, determinism."""

import os
import random
import textwrap

from repro.analysis.flow import (
    FlowSpecs,
    analyze_paths,
    render_json,
    render_text,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CHAIN = os.path.join(FIXTURES, "chain")
SANITIZED = os.path.join(FIXTURES, "sanitized")


def analyze_source(tmp_path, source, name="mod.py"):
    target = tmp_path / name.replace(".py", "") / name
    target.parent.mkdir(exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return analyze_paths([str(target.parent)], FlowSpecs())


class TestInterproceduralTrace:
    def test_chain_fixture_reports_the_complete_hop_chain(self):
        findings = analyze_paths([CHAIN], FlowSpecs())
        assert len(findings) == 1
        f = findings[0]
        assert (f.rule, f.category) == ("DF001", "wall-clock")
        assert f.source == "time.time"
        assert f.sink == "repro.ops.routes.canonical_bytes"
        assert f.path.endswith("chain.py") and f.line == 28
        # The full source->sink journey, every hop as path:line.
        assert [(h.line, h.note) for h in f.trace] == [
            (16, "time.time() [source]"),
            (16, "-> stamp"),
            (17, "return"),
            (26, "returned by read_clock()"),
            (26, "-> raw"),
            (27, "argument to wrap()"),
            (20, "parameter 'value' of chain.wrap()"),
            (21, "-> payload"),
            (22, "return"),
            (27, "-> enriched"),
            (28, "repro.ops.routes.canonical_bytes() [sink]"),
        ]
        assert all(h.path.endswith("chain.py") for h in f.trace)

    def test_rendered_finding_carries_every_hop(self):
        finding = analyze_paths([CHAIN], FlowSpecs())[0]
        rendered = finding.render()
        assert rendered.count("\n") == len(finding.trace)
        assert "time.time() [source]" in rendered
        assert "[sink]" in rendered

    def test_taint_through_parameter_into_sink_argument(self, tmp_path):
        findings = analyze_source(tmp_path, """\
            import time
            from repro.ops.routes import canonical_bytes

            def publish(payload):
                return canonical_bytes(payload)

            def emit():
                return publish({"at": time.time()})
        """)
        assert [f.rule for f in findings] == ["DF001"]
        notes = [h.note for h in findings[0].trace]
        assert "argument to publish()" in notes
        assert "parameter 'payload' of mod.publish()" in notes


class TestSanitizers:
    def test_sorted_mid_chain_kills_the_listing_flow(self):
        findings = analyze_paths([SANITIZED], FlowSpecs())
        # Only the raw-listing variant survives; its sorted sibling and
        # the marker-sanitized clock flow are erased.
        assert len(findings) == 1
        f = findings[0]
        assert (f.rule, f.source) == ("DF003", "os.listdir")
        assert f.line == 33

    def test_marker_comment_kills_the_flow_on_its_line(self, tmp_path):
        dirty = """\
            import time
            from repro.ops.routes import canonical_bytes

            def emit():
                stamp = time.time()
                return canonical_bytes({"stamp": stamp})
        """
        assert len(analyze_source(tmp_path, dirty)) == 1
        clean = dirty.replace(
            "time.time()",
            "time.time()  # darpaflow: sanitized=reviewed")
        assert analyze_source(tmp_path, clean, name="clean.py") == []

    def test_sorted_does_not_clear_a_wall_clock_value(self, tmp_path):
        # sorted() erases *order* taints only: sorting a list holding a
        # clock reading leaves the bytes just as nondeterministic.
        findings = analyze_source(tmp_path, """\
            import time
            from repro.ops.routes import canonical_bytes

            def emit():
                series = sorted([time.time()])
                return canonical_bytes({"series": series})
        """)
        assert [f.rule for f in findings] == ["DF001"]

    def test_injectable_listing_result_is_clean(self, tmp_path):
        findings = analyze_source(tmp_path, """\
            from repro.ops.artifacts import injectable_listing
            from repro.ops.routes import canonical_bytes

            def emit(run_dir):
                return canonical_bytes({"names": injectable_listing(run_dir)})
        """)
        assert findings == []


class TestCategories:
    def test_seeded_constructor_is_clean_unseeded_is_not(self, tmp_path):
        findings = analyze_source(tmp_path, """\
            import random
            from repro.ops.routes import canonical_bytes

            def emit_seeded(seed):
                rng = random.Random(seed)
                return canonical_bytes({"draw": rng})

            def emit_unseeded():
                rng = random.Random()
                return canonical_bytes({"draw": rng})
        """)
        assert [f.rule for f in findings] == ["DF002"]
        assert findings[0].source == "random.Random"

    def test_env_identity_and_scheduling_sources(self, tmp_path):
        findings = analyze_source(tmp_path, """\
            import os
            import uuid
            from repro.ops.routes import canonical_bytes

            def emit(obj):
                return canonical_bytes({
                    "env": os.environ.get("HOME"),
                    "ident": id(obj),
                    "run": str(uuid.uuid4()),
                })
        """)
        assert sorted(f.rule for f in findings) == \
            ["DF005", "DF006", "DF007"]

    def test_set_iteration_order_reaches_sink(self, tmp_path):
        findings = analyze_source(tmp_path, """\
            from repro.ops.routes import canonical_bytes

            def emit(items):
                seen = set(items)
                return canonical_bytes({"seen": list(seen)})

            def emit_sorted(items):
                return canonical_bytes({"seen": sorted(set(items))})
        """)
        assert [f.rule for f in findings] == ["DF004"]
        assert findings[0].trace[0].line == 4

    def test_pathlib_iterdir_is_a_listing_source(self, tmp_path):
        findings = analyze_source(tmp_path, """\
            from pathlib import Path
            from repro.ops.routes import canonical_bytes

            def emit(root):
                names = [p.name for p in Path(root).iterdir()]
                return canonical_bytes({"names": names})
        """)
        assert [f.rule for f in findings] == ["DF003"]
        assert findings[0].source == ".iterdir"


class TestDeterminism:
    def test_reports_byte_identical_for_any_input_path_order(self):
        trees = [CHAIN, SANITIZED,
                 os.path.join(CHAIN, "chain.py"),
                 os.path.join(SANITIZED, "sanitized.py")]
        baseline_text = baseline_json = None
        rng = random.Random(1234)
        for _ in range(6):
            rng.shuffle(trees)
            findings = analyze_paths(list(trees), FlowSpecs())
            text, payload = render_text(findings), render_json(findings)
            if baseline_text is None:
                baseline_text, baseline_json = text, payload
            assert text == baseline_text
            assert payload == baseline_json

    def test_parse_error_becomes_a_df000_finding(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        findings = analyze_paths([str(tmp_path)], FlowSpecs())
        assert [f.rule for f in findings] == ["DF000"]
        assert "does not parse" in findings[0].message
