"""Baseline semantics: line-insensitive fingerprints, partition, I/O."""

import json
import os

import pytest

from repro.analysis.flow import (
    FlowSpecs,
    analyze_paths,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.flow.baseline import BaselineError, DEFAULT_REASON
from repro.analysis.flow.specs import specs_from_table
from repro.analysis.config import ConfigError

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CHAIN = os.path.join(FIXTURES, "chain")


def chain_finding():
    findings = analyze_paths([CHAIN], FlowSpecs())
    assert len(findings) == 1
    return findings[0]


class TestFingerprint:
    def test_shape_names_rule_source_and_sink_files(self):
        fp = fingerprint(chain_finding())
        assert fp.startswith("DF001:time.time@")
        assert "->repro.ops.routes.canonical_bytes@" in fp
        assert fp.endswith("chain.py")

    def test_moving_code_does_not_churn_the_fingerprint(self, tmp_path):
        # Refactors that merely shift lines must not invalidate the
        # committed baseline: re-analyze the chain fixture with blank
        # lines prepended and compare the path-relative tails.
        moved = tmp_path / "chain" / "chain.py"
        moved.parent.mkdir()
        with open(os.path.join(CHAIN, "chain.py")) as fp:
            moved.write_text("\n" * 20 + fp.read())
        shifted = analyze_paths([str(moved.parent)], FlowSpecs())
        assert len(shifted) == 1
        original = chain_finding()
        assert shifted[0].line != original.line
        strip = lambda fp_: fp_.replace(str(tmp_path) + os.sep, "")
        assert strip(fingerprint(shifted[0])) == \
            strip(fingerprint(original)).replace(
                os.path.join("tests", "analysis", "flow", "fixtures")
                + os.sep, "")


class TestRoundTrip:
    def test_update_then_gate_is_clean(self, tmp_path):
        finding = chain_finding()
        path = str(tmp_path / "flow-baseline.json")
        assert write_baseline(path, [finding]) == 1
        accepted = load_baseline(path)
        assert accepted == {fingerprint(finding): DEFAULT_REASON}
        fresh, known = partition([finding], accepted)
        assert fresh == [] and known == [finding]

    def test_existing_reasons_survive_updates(self, tmp_path):
        finding = chain_finding()
        path = str(tmp_path / "flow-baseline.json")
        write_baseline(path, [finding])
        reviewed = {fingerprint(finding): "reviewed: sim-clock shim"}
        write_baseline(path, [finding], existing=reviewed)
        assert load_baseline(path) == reviewed

    def test_unbaselined_flow_stays_fresh(self):
        finding = chain_finding()
        fresh, known = partition([finding], {"DF9:other": "x"})
        assert fresh == [finding] and known == []


class TestMalformedBaselines:
    @pytest.mark.parametrize("payload", [
        "not json at all",
        json.dumps({"version": 99, "accepted": []}),
        json.dumps({"version": 1, "accepted": {}}),
        json.dumps({"version": 1, "accepted": [{"reason": "no print"}]}),
    ])
    def test_malformed_raises(self, tmp_path, payload):
        bad = tmp_path / "flow-baseline.json"
        bad.write_text(payload)
        with pytest.raises(BaselineError):
            load_baseline(str(bad))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "gone.json"))


class TestSpecsConfig:
    def test_table_extends_every_axis(self):
        specs = specs_from_table({
            "exclude": ["generated/*"],
            "sinks": ["mylib.emit"],
            "sanitizers": ["mylib.canon"],
            "sources": {"wall-clock": ["mylib.clock.read"]},
        })
        assert specs.exclude == ("generated/*",)
        assert specs.sink_description("mylib.emit") == "configured sink"
        assert specs.sanitizer_categories("mylib.canon") is None
        assert specs.source_category("mylib.clock.read") == "wall-clock"
        # Defaults are extended, not replaced.
        assert specs.source_category("time.time") == "wall-clock"
        assert specs.sink_description("canonical_bytes") is not None

    def test_unknown_key_and_category_raise(self):
        with pytest.raises(ConfigError):
            specs_from_table({"surprise": True})
        with pytest.raises(ConfigError):
            specs_from_table({"sources": {"mystery": ["x"]}})

    def test_configured_sanitizer_erases_a_value_taint(self, tmp_path):
        target = tmp_path / "mod" / "mod.py"
        target.parent.mkdir()
        target.write_text(
            "import time\n"
            "from repro.ops.routes import canonical_bytes\n"
            "from mylib import canon\n\n"
            "def emit():\n"
            "    stamp = canon(time.time())\n"
            "    return canonical_bytes({'stamp': stamp})\n")
        dirty = analyze_paths([str(target.parent)], FlowSpecs())
        assert [f.rule for f in dirty] == ["DF001"]
        specs = specs_from_table({"sanitizers": ["mylib.canon"]})
        assert analyze_paths([str(target.parent)], specs) == []
