"""Golden tests: every rule against its positive/negative fixtures."""

import os

import pytest

from repro.analysis import (
    LintConfig,
    LintEngine,
    load_config,
    rules_for_ids,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: (fixture file, expected rule) — one seeded violation per rule.
DIRTY = [
    ("dl001_wall_clock.py", "DL001"),
    ("dl002_unseeded_rng.py", "DL002"),
    ("dl003_unordered_iteration.py", "DL003"),
    ("dl004_float_accumulation.py", "DL004"),
    ("dl005_swallowed_exception.py", "DL005"),
    ("dl006_mutable_default.py", "DL006"),
    ("dl007_matmul_reduction.py", "DL007"),
    ("dl008_unsorted_listing.py", "DL008"),
]


def engine() -> LintEngine:
    # Explicit default config: the repo's own [tool.darpalint] must not
    # leak into fixture expectations.
    return LintEngine(config=LintConfig())


class TestDirtyFixtures:
    @pytest.mark.parametrize("filename,rule", DIRTY,
                             ids=[rule for _, rule in DIRTY])
    def test_exactly_one_finding_of_the_expected_rule(self, filename, rule):
        path = os.path.join(FIXTURES, "dirty", filename)
        findings = engine().lint_file(path)
        assert [f.rule for f in findings] == [rule]
        assert findings[0].line > 0 and findings[0].message

    def test_dirty_tree_has_one_finding_per_rule(self):
        findings = engine().lint_paths([os.path.join(FIXTURES, "dirty")])
        assert sorted(f.rule for f in findings) == \
            ["DL001", "DL002", "DL003", "DL004", "DL005", "DL006",
             "DL007", "DL008"]

    @pytest.mark.parametrize("filename,rule", DIRTY,
                             ids=[rule for _, rule in DIRTY])
    def test_rule_filter_isolates_each_rule(self, filename, rule):
        eng = LintEngine(rules=rules_for_ids([rule]), config=LintConfig())
        findings = eng.lint_paths([os.path.join(FIXTURES, "dirty")])
        assert [f.rule for f in findings] == [rule]
        assert findings[0].path.endswith(filename)


class TestCleanFixture:
    def test_near_miss_patterns_stay_silent(self):
        findings = engine().lint_paths([os.path.join(FIXTURES, "clean")])
        assert findings == []


class TestSuppressions:
    def test_inline_disable_comments_suppress(self):
        findings = engine().lint_paths([os.path.join(FIXTURES, "suppressed")])
        assert findings == []

    def test_suppressions_are_not_vacuous(self):
        # Stripping the markers must resurface the findings, proving
        # the file really contains violations the comments hide.
        path = os.path.join(FIXTURES, "suppressed", "suppressed.py")
        with open(path) as fp:
            source = fp.read().replace("darpalint: disable", "nope")
        findings = engine().lint_source(source, path="suppressed.py")
        assert sorted(f.rule for f in findings) == ["DL001", "DL005"]


class TestAllowlists:
    def test_fixture_config_allowlists_and_excludes(self):
        config = load_config(
            os.path.join(FIXTURES, "allowlisted", "pyproject.toml"))
        eng = LintEngine(config=config)
        findings = eng.lint_paths([os.path.join(FIXTURES, "allowlisted")])
        assert findings == []

    def test_without_config_the_same_tree_is_dirty(self):
        findings = engine().lint_paths([os.path.join(FIXTURES, "allowlisted")])
        by_file = sorted((os.path.basename(f.path), f.rule)
                         for f in findings)
        assert by_file == [("generated_skip_me.py", "DL001"),
                           ("timing_helper.py", "DL001")]
