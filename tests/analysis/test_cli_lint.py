"""CLI exit codes and report plumbing, mirroring tests/test_cli.py.

Conventions under test (same as ``repro.bench.regress``): 0 = clean,
1 = findings, 2 = usage error (missing path / unknown rule / bad
config), argparse's own usage failures also exit 2.
"""

import json
import os
import random

import pytest

from repro.analysis.cli import build_parser, main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
DIRTY = os.path.join(FIXTURES, "dirty")
CLEAN = os.path.join(FIXTURES, "clean")


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.paths == ["src"]
        assert args.format == "text" and args.rules is None

    def test_bad_format_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--format", "xml"])
        assert excinfo.value.code == 2


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([CLEAN]) == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_final_src_tree_exits_zero(self, capsys):
        # The acceptance bar: the repo lints itself clean.
        assert main(["src"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_tree_exits_one_with_all_rules(self, capsys):
        assert main([DIRTY]) == 1
        out = capsys.readouterr().out
        for rule in ("DL001", "DL002", "DL003", "DL004", "DL005", "DL006",
                     "DL007", "DL008"):
            assert rule in out
        assert "8 finding(s)" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        rc = main([str(tmp_path / "nope")])
        assert rc == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--rules", "DL999", CLEAN]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_malformed_config_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "pyproject.toml"
        bad.write_text("[tool.darpalint]\nsurprise = true\n")
        assert main(["--config", str(bad), CLEAN]) == 2
        assert "bad config" in capsys.readouterr().err


class TestListRules:
    def test_lists_every_rule_and_exits_zero(self, capsys):
        assert main(["--list-rules", "--no-config"]) == 0
        out = capsys.readouterr().out
        for rule in ("DL001", "DL002", "DL003", "DL004", "DL005", "DL006",
                     "DL007", "DL008"):
            assert rule in out
        # Without config nothing is allowlisted.
        assert "allowlisted for" not in out
        assert "enabled everywhere" in out

    def test_shows_allowlisted_paths_from_pyproject(self, capsys):
        # The repo's own [tool.darpalint] allowlists DL001 for the
        # wallclock module; --list-rules must surface that state.
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "allowlisted for: repro/wallclock.py" in out

    def test_repro_cli_plumbs_list_rules(self, capsys):
        from repro.cli import main as repro_main
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DL008" in out and "unsorted filesystem enumeration" in out


class TestReports:
    def test_rules_filter_limits_findings(self, capsys):
        assert main(["--rules", "DL001", DIRTY]) == 1
        out = capsys.readouterr().out
        assert "DL001" in out and "DL006" not in out
        assert "1 finding(s)" in out

    def test_json_output_file(self, tmp_path):
        report = tmp_path / "findings.json"
        assert main(["--format", "json", "--output", str(report),
                     DIRTY]) == 1
        payload = json.loads(report.read_text())
        assert payload["count"] == 8
        assert payload["by_rule"]["DL003"] == 1

    def test_json_bytes_identical_for_shuffled_paths(self, tmp_path):
        # The acceptance bar: byte-identical output across two runs
        # with shuffled input path order.
        trees = [os.path.join(FIXTURES, name)
                 for name in ("dirty", "clean", "suppressed", "allowlisted")]
        shuffled = list(trees)
        random.Random(3).shuffle(shuffled)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["--format", "json", "--no-config",
                     "--output", str(a)] + trees) == 1
        assert main(["--format", "json", "--no-config",
                     "--output", str(b)] + shuffled) == 1
        assert a.read_bytes() == b.read_bytes()


class TestReproCliDelegation:
    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main as repro_main
        assert repro_main(["lint", CLEAN]) == 0
        assert "clean" in capsys.readouterr().out
        assert repro_main(["lint", DIRTY]) == 1
        assert "8 finding(s)" in capsys.readouterr().out

    def test_repro_lint_missing_path(self, tmp_path, capsys):
        from repro.cli import main as repro_main
        assert repro_main(["lint", str(tmp_path / "gone")]) == 2
        assert "no such file" in capsys.readouterr().err
