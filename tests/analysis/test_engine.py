"""Engine mechanics: determinism, suppressions, config, parse errors."""

import json
import os
import random

import pytest

from repro.analysis import (
    ConfigError,
    LintConfig,
    LintEngine,
    PARSE_ERROR_RULE,
    config_from_table,
    iter_python_files,
    load_config,
    render_json,
    render_text,
)
from repro.analysis.config import _parse_mini_toml
from repro.analysis.engine import _collect_suppressions

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
ALL_TREES = [os.path.join(FIXTURES, name)
             for name in ("dirty", "clean", "suppressed", "allowlisted")]


def engine() -> LintEngine:
    return LintEngine(config=LintConfig())


class TestDeterminism:
    def test_findings_identical_for_any_traversal_order(self):
        want = engine().lint_paths(list(ALL_TREES))
        rng = random.Random(7)
        for _ in range(5):
            shuffled = list(ALL_TREES)
            rng.shuffle(shuffled)
            assert engine().lint_paths(shuffled) == want

    def test_reports_are_byte_identical_across_shuffles(self):
        a = engine().lint_paths(list(ALL_TREES))
        b = engine().lint_paths(list(reversed(ALL_TREES)))
        assert render_json(a) == render_json(b)
        assert render_text(a) == render_text(b)

    def test_overlapping_paths_deduplicate(self):
        dirty = os.path.join(FIXTURES, "dirty")
        once = engine().lint_paths([dirty])
        twice = engine().lint_paths(
            [dirty, os.path.join(dirty, "dl001_wall_clock.py"), dirty])
        assert twice == once

    def test_iter_python_files_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = iter_python_files([str(tmp_path)])
        assert [os.path.basename(p) for p in files] == ["a.py", "b.py"]


class TestParseErrors:
    def test_syntax_error_becomes_dl000_finding(self):
        findings = engine().lint_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert "does not parse" in findings[0].message

    def test_json_report_shape(self):
        findings = engine().lint_source("import time\ntime.time()\n",
                                        path="x.py")
        payload = json.loads(render_json(findings))
        assert payload["version"] == 1
        assert payload["count"] == 1
        assert payload["by_rule"] == {"DL001": 1}
        assert payload["findings"][0]["path"] == "x.py"
        assert payload["findings"][0]["line"] == 2


class TestSuppressionParsing:
    def test_multiple_rules_and_spacing(self):
        lines = [
            "x = 1  # darpalint: disable=DL001, DL003",
            "y = 2  #darpalint: disable=all",
            "z = 3  # unrelated comment",
        ]
        got = _collect_suppressions(lines)
        assert got == {1: {"DL001", "DL003"}, 2: {"ALL"}}


class TestScopeAndAliases:
    def test_aliased_imports_resolve(self):
        source = (
            "import time as t\n"
            "from time import perf_counter as pc\n"
            "def f():\n"
            "    return t.time() + pc()\n"
        )
        findings = engine().lint_source(source, path="alias.py")
        assert [f.rule for f in findings] == ["DL001", "DL001"]

    def test_numpy_alias_resolves_for_dl002(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.rand(3)\n"
        )
        findings = engine().lint_source(source, path="np.py")
        assert [f.rule for f in findings] == ["DL002"]

    def test_dl003_only_fires_in_configured_scopes(self):
        body = "    out = []\n    for k in d.keys():\n        out.append(k)\n    return out\n"
        merge = f"def merge_rows(d):\n{body}"
        other = f"def build_rows(d):\n{body}"
        assert [f.rule for f in engine().lint_source(merge)] == ["DL003"]
        assert engine().lint_source(other) == []

    def test_dl003_respects_sorted_wrapper_over_generators(self):
        source = (
            "def merge_parts(d):\n"
            "    return [k for k in sorted(k2 for k2 in d.keys())]\n"
        )
        assert engine().lint_source(source) == []

    def test_dl004_assign_form_detects_self_accumulation(self):
        source = (
            "def merge_sums(merged, hist):\n"
            "    merged['sum'] = float(merged['sum']) + float(hist['sum'])\n"
        )
        findings = engine().lint_source(source)
        assert [f.rule for f in findings] == ["DL004"]
        # A plain non-accumulating float assignment stays silent.
        source_ok = (
            "def merge_sums(merged, hist):\n"
            "    merged['sum'] = float(hist['sum']) + 0.0\n"
        )
        assert engine().lint_source(source_ok) == []


class TestConfig:
    def test_repo_pyproject_parses_and_allowlists_wallclock(self):
        config = load_config()
        assert "repro/wallclock.py" in config.allow.get("DL001", ())

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigError):
            config_from_table({"surprise": True})

    def test_allow_must_be_table_of_string_lists(self):
        with pytest.raises(ConfigError):
            config_from_table({"allow": {"DL001": 7}})

    def test_mini_toml_agrees_with_tomllib_on_real_configs(self):
        import tomllib
        for path in (
                os.path.join(FIXTURES, "allowlisted", "pyproject.toml"),
                "pyproject.toml"):
            with open(path, "rb") as fp:
                want = tomllib.load(fp).get("tool", {}).get("darpalint")
            if want is None:
                continue
            with open(path, encoding="utf-8") as fp:
                got = _parse_mini_toml(fp.read())["tool"]["darpalint"]
            assert got == want

    def test_mini_toml_multiline_lists_and_scalars(self):
        text = (
            "[tool.darpalint]\n"
            "exclude = [\n"
            "    'a/*.py',  # with a comment\n"
            "    \"b/*.py\",\n"
            "]\n"
            "[tool.darpalint.allow]\n"
            "DL001 = ['x.py']\n"
        )
        table = _parse_mini_toml(text)["tool"]["darpalint"]
        config = config_from_table(table)
        assert config.exclude == ("a/*.py", "b/*.py")
        assert config.allow == {"DL001": ("x.py",)}
