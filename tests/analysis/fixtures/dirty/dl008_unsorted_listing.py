"""Fixture: exactly one DL008 (unsorted filesystem enumeration) violation."""

import os


def collect_artifacts(run_dir):
    return [name for name in os.listdir(run_dir) if name.endswith(".json")]
