"""Fixture: exactly one DL002 (unseeded RNG) violation."""

import random


def pick(items):
    return random.choice(items)
