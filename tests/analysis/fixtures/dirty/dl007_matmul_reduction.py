"""Fixture: exactly one DL007 (undocumented matmul reduction) violation."""

import numpy as np


def merge_shard_features(parts, weights):
    stacked = np.stack(parts)
    return weights @ stacked
