"""Fixture: exactly one DL001 (wall clock) violation."""

import time


def progress_seconds():
    return time.time()
