"""Fixture: exactly one DL006 (mutable default argument) violation."""


def collect(item, seen=[]):
    seen.append(item)
    return seen
