"""Fixture: exactly one DL003 (unordered iteration) violation."""


def merge_counts(parts):
    out = {}
    for part in parts:
        for key in part.keys():
            out[key] = out.get(key, 0) + part[key]
    return out
