"""Fixture: exactly one DL004 (float accumulation in merge) violation."""


def merge_totals(parts):
    total = 0.0
    for part in parts:
        total += float(part)
    return total
