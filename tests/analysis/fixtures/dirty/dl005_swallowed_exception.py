"""Fixture: exactly one DL005 (swallowed exception) violation."""


def read_best_effort(path):
    try:
        with open(path) as fp:
            return fp.read()
    except OSError:
        pass
    return ""
