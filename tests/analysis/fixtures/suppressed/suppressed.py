"""Fixture: violations neutralized by inline suppressions."""

import time


def progress_seconds():
    # Justification lives with the suppression, as the workflow demands.
    return time.time()  # darpalint: disable=DL001


def best_effort(path):
    try:
        with open(path) as fp:
            return fp.read()
    except OSError:  # darpalint: disable=all
        pass
    return ""
