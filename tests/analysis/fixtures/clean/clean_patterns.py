"""Fixture: near-miss patterns that must NOT raise any finding.

Every block here is the sanctioned twin of a dirty-fixture pattern:
the linter earning its keep means flagging the dirty file while
staying silent on all of this.
"""

import math
import random

import numpy as np


def simulated_now(clock):
    # DL001 negative: reading the sim clock is the whole point.
    return clock.now_ms


def pick_seeded(items, seed):
    # DL002 negative: explicit seeds for both RNG families.
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    return rng.choice(items), np_rng


def merge_counts_sorted(parts):
    # DL003 negative: sorted() restores a deterministic order, and
    # .items() (insertion-ordered) is never flagged.
    out = {}
    for part in parts:
        for key in sorted(part.keys()):
            out[key] = out.get(key, 0) + part[key]
        for key, value in part.items():
            out[key] = max(out[key], value)
    return out


def merge_totals_integer(parts):
    # DL004 negative: integer accumulation is exactly associative,
    # and fsum over collected floats is permutation-invariant.
    total = 0
    floats = []
    for part in parts:
        total += int(part)
        floats.append(float(part))
    return total, math.fsum(floats)


def read_and_report(path, failures):
    # DL005 negative: the failure is recorded, not swallowed.
    try:
        with open(path) as fp:
            return fp.read()
    except OSError as exc:
        failures.append(str(exc))
        return ""


def merge_projected_shards(parts, basis):
    # DL007 negative: the accumulation order is documented.
    # reduction-order: one GEMM per shard, K never split, fixed order
    return [basis @ part for part in parts]


def project_features(features, basis):
    # DL007 negative: not a merge/reduction scope, so a product here
    # is ordinary math, not a shard-order hazard.
    return np.dot(features, basis)


def collect_fresh(item, seen=None):
    # DL006 negative: the None-default idiom.
    if seen is None:
        seen = []
    seen.append(item)
    return seen
