"""Fixture: near-miss patterns that must NOT raise any finding.

Every block here is the sanctioned twin of a dirty-fixture pattern:
the linter earning its keep means flagging the dirty file while
staying silent on all of this.
"""

import glob
import math
import os
import random
from pathlib import Path

import numpy as np


def simulated_now(clock):
    # DL001 negative: reading the sim clock is the whole point.
    return clock.now_ms


def pick_seeded(items, seed):
    # DL002 negative: explicit seeds for both RNG families.
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    return rng.choice(items), np_rng


def merge_counts_sorted(parts):
    # DL003 negative: sorted() restores a deterministic order, and
    # .items() (insertion-ordered) is never flagged.
    out = {}
    for part in parts:
        for key in sorted(part.keys()):
            out[key] = out.get(key, 0) + part[key]
        for key, value in part.items():
            out[key] = max(out[key], value)
    return out


def merge_totals_integer(parts):
    # DL004 negative: integer accumulation is exactly associative,
    # and fsum over collected floats is permutation-invariant.
    total = 0
    floats = []
    for part in parts:
        total += int(part)
        floats.append(float(part))
    return total, math.fsum(floats)


def read_and_report(path, failures):
    # DL005 negative: the failure is recorded, not swallowed.
    try:
        with open(path) as fp:
            return fp.read()
    except OSError as exc:
        failures.append(str(exc))
        return ""


def merge_projected_shards(parts, basis):
    # DL007 negative: the accumulation order is documented.
    # reduction-order: one GEMM per shard, K never split, fixed order
    return [basis @ part for part in parts]


def project_features(features, basis):
    # DL007 negative: not a merge/reduction scope, so a product here
    # is ordinary math, not a shard-order hazard.
    return np.dot(features, basis)


def collect_fresh(item, seen=None):
    # DL006 negative: the None-default idiom.
    if seen is None:
        seen = []
    seen.append(item)
    return seen


def enumerate_sorted(run_dir):
    # DL008 negative: every enumeration is order-erased at the call —
    # sorted(), an order-insensitive aggregate, or set construction.
    names = sorted(os.listdir(run_dir))
    count = len(glob.glob(os.path.join(run_dir, "*.json")))
    members = set(os.listdir(run_dir))
    children = sorted(Path(run_dir).iterdir())
    return names, count, members, children


def injectable_listing(run_dir, names=None):
    # DL008 negative: the sanctioned helper is allowed to touch the
    # raw listing because it sorts before anyone can iterate it.
    listing = list(names) if names is not None else os.listdir(run_dir)
    return sorted(listing)
