"""Fixture: wall-clock helper allowlisted by the fixture pyproject."""

import time


def monotonic_ms():
    return time.perf_counter() * 1000.0
