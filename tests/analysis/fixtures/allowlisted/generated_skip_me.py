"""Fixture: excluded by the fixture pyproject's exclude globs."""

import time


def stamp():
    return time.time()
