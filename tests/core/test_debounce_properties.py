"""Property-based tests of the cut-off debouncer invariant.

The debouncer's contract: for an arbitrary stream of UI-update events,
it fires exactly once per maximal quiet gap of at least ``ct``
milliseconds following at least one event (including the final gap).
"""

from typing import List

from hypothesis import given, settings, strategies as st

from repro.android import AccessibilityEventType, SimulatedClock
from repro.android.events import AccessibilityEvent
from repro.core import CutoffDebouncer

gaps = st.lists(st.floats(min_value=1.0, max_value=1000.0,
                          allow_nan=False), min_size=1, max_size=30)
cts = st.sampled_from([50.0, 200.0, 500.0])


def expected_firings(gap_list: List[float], ct: float) -> int:
    """Count maximal quiet gaps >= ct after at least one event.

    ``gap_list[i]`` is the silence after event ``i`` (the last gap runs
    to the end of the run, which we extend beyond ct).
    """
    count = 0
    for gap in gap_list[:-1]:
        if gap >= ct:
            count += 1
    # The stream ends with a long settle window (see test), so the last
    # event always produces one more firing.
    return count + 1


class TestDebouncerInvariant:
    @given(gap_list=gaps, ct=cts)
    @settings(max_examples=60, deadline=None)
    def test_fires_once_per_quiet_gap(self, gap_list, ct):
        clock = SimulatedClock()
        fired = []
        deb = CutoffDebouncer(clock, ct, fired.append)
        for gap in gap_list:
            deb.feed(AccessibilityEvent(
                event_type=AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED,
                package="com.x", timestamp_ms=clock.now_ms))
            clock.advance(gap)
        clock.advance(ct + 1.0)  # guarantee the final settle
        # Timer semantics: a gap of exactly ct fires (schedule at ct,
        # advance reaches it); gaps below ct are suppressed.
        assert len(fired) == expected_firings(gap_list, ct)

    @given(gap_list=gaps, ct=cts)
    @settings(max_examples=30, deadline=None)
    def test_event_counter_total(self, gap_list, ct):
        clock = SimulatedClock()
        deb = CutoffDebouncer(clock, ct, lambda e: None)
        for gap in gap_list:
            deb.feed(AccessibilityEvent(
                event_type=AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED,
                package="com.x", timestamp_ms=clock.now_ms))
            clock.advance(gap)
        assert deb.events_seen == len(gap_list)

    @given(gap_list=gaps)
    @settings(max_examples=30, deadline=None)
    def test_zero_ct_fires_per_event(self, gap_list):
        clock = SimulatedClock()
        fired = []
        deb = CutoffDebouncer(clock, 0.0, fired.append)
        for gap in gap_list:
            deb.feed(AccessibilityEvent(
                event_type=AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED,
                package="com.x", timestamp_ms=clock.now_ms))
            clock.advance(gap)
        assert len(fired) == len(gap_list)
