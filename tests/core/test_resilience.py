"""Tests for the retry/backoff and circuit-breaker primitives."""

import numpy as np
import pytest

from repro.android import SimulatedClock
from repro.core.resilience import BreakerState, CircuitBreaker, RetryPolicy


class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay_ms=50.0, multiplier=2.0,
                             max_delay_ms=1000.0, jitter_frac=0.0)
        assert policy.delay_ms(1) == 50.0
        assert policy.delay_ms(2) == 100.0
        assert policy.delay_ms(3) == 200.0

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay_ms=50.0, multiplier=2.0,
                             max_delay_ms=300.0, jitter_frac=0.0)
        assert policy.delay_ms(10) == 300.0

    def test_jitter_stays_within_the_fraction(self):
        policy = RetryPolicy(base_delay_ms=100.0, multiplier=1.0,
                             jitter_frac=0.25)
        rng = np.random.default_rng(3)
        for _ in range(200):
            d = policy.delay_ms(1, rng)
            assert 100.0 <= d <= 125.0

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy()
        a = [policy.delay_ms(i, np.random.default_rng(9)) for i in (1, 2, 3)]
        b = [policy.delay_ms(i, np.random.default_rng(9)) for i in (1, 2, 3)]
        assert a == b

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay_ms=80.0, jitter_frac=0.5)
        assert policy.delay_ms(1) == 80.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_ms(0)


@pytest.fixture
def clock():
    return SimulatedClock()


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker(clock)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third one trips it
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # streak was broken

    def test_half_opens_after_cooldown(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_ms=5000)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(4999)
        assert not breaker.allow()
        clock.advance(1)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # the probe call

    def test_half_open_probe_success_closes(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_ms=100)
        breaker.record_failure()
        clock.advance(100)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=3, cooldown_ms=100)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(100)
        assert breaker.state is BreakerState.HALF_OPEN
        # One failure re-opens immediately, ignoring the threshold.
        assert breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        # And the new cooldown starts from the re-open time.
        clock.advance(99)
        assert not breaker.allow()
        clock.advance(1)
        assert breaker.allow()

    def test_opens_counter_accumulates(self, clock):
        breaker = CircuitBreaker(clock, failure_threshold=1, cooldown_ms=10)
        for _ in range(4):
            breaker.record_failure()
            clock.advance(10)
        assert breaker.opens == 4

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, cooldown_ms=-1)
