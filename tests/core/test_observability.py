"""Unit tests for repro.core.observability: metrics, tracer, profiler,
span-derived reporting, and the DarpaStats compatibility view."""

import io
import json
import math

import pytest

from repro.android.clock import SimulatedClock
from repro.android.device import Device, DeviceProfile, PerfMeter, PerfOp
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.core.observability import (
    NULL_TRACER,
    OVERHEAD_STEP,
    Histogram,
    MetricsRegistry,
    PlanProfiler,
    Span,
    Tracer,
    ops_from_spans,
    report_from_spans,
    session_root,
    stage_cpu_ms,
)
from repro.core.pipeline import STAT_COUNTERS, DarpaStats

from tests.core.test_pipeline import make_session


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_inc_and_reset(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert reg.counter("x") is c  # same instrument on re-touch
        c.reset()
        assert c.value == 0

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_and_totals(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]  # last slot = overflow
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        h.reset()
        assert h.bucket_counts == [0, 0, 0, 0] and h.count == 0 and h.sum == 0.0

    def test_histogram_boundary_is_inclusive(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 1.0))

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1
        reg.reset()
        assert reg.snapshot()["counters"] == {"c": 0}


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_nesting_and_parent_ids(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            clock.advance(5)
            with tracer.span("inner") as inner:
                clock.advance(2)
            assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert inner.duration_ms == 2.0
        assert outer.duration_ms == 7.0

    def test_end_span_enforces_lifo(self):
        tracer = Tracer(SimulatedClock())
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        with pytest.raises(ValueError):
            tracer.end_span(outer)

    def test_emit_retroactive_span(self):
        clock = SimulatedClock()
        clock.advance(100)
        tracer = Tracer(clock)
        span = tracer.emit("debounce", start_ms=40.0, end_ms=100.0, package="p")
        assert span.closed and span.duration_ms == 60.0
        with pytest.raises(ValueError):
            tracer.emit("bad", start_ms=10.0, end_ms=5.0)

    def test_ring_buffer_drops_oldest_and_counts(self):
        clock = SimulatedClock()
        tracer = Tracer(clock, capacity=2)
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished] == ["s2", "s3"]
        assert tracer.dropped == 2

    def test_dropped_spans_surface_as_registry_counter(self):
        from repro.core.observability import DROPPED_SPANS_COUNTER

        reg = MetricsRegistry()
        tracer = Tracer(SimulatedClock(), registry=reg, capacity=3)
        # Pre-created at zero: a healthy trace still exports the counter.
        assert reg.counter(DROPPED_SPANS_COUNTER).value == 0
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped == 2
        assert reg.counter(DROPPED_SPANS_COUNTER).value == tracer.dropped
        assert reg.snapshot()["counters"][DROPPED_SPANS_COUNTER] == 2

    def test_attach_registry_precreates_drop_counter(self):
        from repro.core.observability import DROPPED_SPANS_COUNTER

        tracer = Tracer(SimulatedClock())
        reg = MetricsRegistry()
        tracer.attach_registry(reg)
        assert tracer.registry is reg
        assert DROPPED_SPANS_COUNTER in reg.snapshot()["counters"]
        NULL_TRACER.attach_registry(reg)  # inert no-op on the null tracer
        assert NULL_TRACER.registry is None

    def test_registry_stage_instruments(self):
        clock = SimulatedClock()
        reg = MetricsRegistry()
        tracer = Tracer(clock, registry=reg)
        meter = PerfMeter(DeviceProfile())
        tracer.observe_perf(meter)
        with tracer.span("analyze"):
            meter.record(PerfOp.SCREENSHOT)
        assert reg.counter("darpa.stage.analyze.count").value == 1
        hist = reg.histogram("darpa.stage.analyze.cpu_ms")
        assert hist.count == 1
        assert hist.sum == pytest.approx(DeviceProfile().screenshot_cpu_ms)

    def test_perf_attribution_innermost_only(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        meter = PerfMeter(DeviceProfile())
        tracer.observe_perf(meter)
        with tracer.span("outer") as outer:
            meter.record(PerfOp.EVENT_DELIVERED)
            with tracer.span("inner") as inner:
                meter.record(PerfOp.INFERENCE)
        assert outer.ops == {"event_delivered": 1}
        assert inner.ops == {"inference": 1}  # no parent roll-up
        meter.record(PerfOp.DECORATION)  # no open span
        assert tracer.orphan_ops == {"decoration": 1}

    def test_perf_reset_clears_attributions(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        meter = PerfMeter(DeviceProfile())
        tracer.observe_perf(meter)
        meter.enable_component("monitoring")
        with tracer.span("s") as s:
            meter.record(PerfOp.SCREENSHOT)
        meter.reset()
        assert s.ops == {}
        assert tracer.components == []

    def test_jsonl_is_sorted_and_parseable(self):
        clock = SimulatedClock()
        tracer = Tracer(clock)
        with tracer.span("a", k=1):
            pass
        fp = io.StringIO()
        assert tracer.write_jsonl(fp) == 1
        line = fp.getvalue().strip()
        parsed = json.loads(line)
        assert parsed["name"] == "a"
        assert line == json.dumps(parsed, sort_keys=True)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("x", a=1) as span:
            NULL_TRACER.annotate(span, b=2)
            NULL_TRACER.set_attribute("c", 3)
        assert span.attributes == {}  # shared singleton never mutated
        assert NULL_TRACER.export() == []
        assert NULL_TRACER.emit("y", 0.0, 1.0) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(SimulatedClock(), capacity=0)


# ---------------------------------------------------------------------------
# PlanProfiler
# ---------------------------------------------------------------------------

class TestPlanProfiler:
    def test_attribute_shares_sum_to_total(self):
        prof = PlanProfiler()
        prof.start_forward(batch=1)
        prof.record_step("conv0", 300)
        prof.record_step("conv1", 100)
        shares = prof.attribute(100.0)
        assert [s["step"] for s in shares] == ["conv0", "conv1"]
        assert sum(s["cpu_ms"] for s in shares) == pytest.approx(100.0)
        assert shares[0]["cpu_ms"] == pytest.approx(75.0)

    def test_start_forward_resets_steps(self):
        prof = PlanProfiler()
        prof.start_forward(batch=1)
        prof.record_step("a", 10)
        prof.start_forward(batch=1)
        assert prof.steps == [] and prof.forwards == 2

    def test_zero_macs_fold_into_overhead(self):
        # A forward made only of zero-MAC plumbing still accounts for
        # the whole charge: it all lands in the explicit overhead frame.
        prof = PlanProfiler()
        prof.start_forward(batch=1)
        prof.record_step("a", 0)
        assert prof.attribute(100.0) == [
            {"step": OVERHEAD_STEP, "macs": 0, "cpu_ms": 100.0}]

    def test_mixed_zero_mac_steps_sum_exactly(self):
        prof = PlanProfiler()
        prof.start_forward(batch=1)
        prof.record_step("conv0", 300)
        prof.record_step("reshape", 0)
        prof.record_step("conv1", 100)
        shares = prof.attribute(100.0)
        assert [s["step"] for s in shares] == ["conv0", "conv1",
                                               OVERHEAD_STEP]
        assert math.fsum(s["cpu_ms"] for s in shares) == 100.0
        assert shares[0]["cpu_ms"] == pytest.approx(75.0)
        assert shares[2]["macs"] == 0

    def test_plan_reports_macs_per_forward(self):
        import numpy as np
        from repro.vision.nn.infer import InferencePlan
        from repro.vision.nn.layers import Conv2D, LeakyReLU, MaxPool2D

        rng = np.random.default_rng(0)
        plan = InferencePlan([Conv2D(3, 4, kernel=3, pad=1, rng=rng),
                              LeakyReLU(0.1), MaxPool2D(2)])
        prof = PlanProfiler()
        plan.profiler = prof
        plan.forward(np.zeros((1, 3, 8, 8), dtype=np.float32))
        # MACs of the pre-pool GEMM: oh*ow*k*k*c*oc = 8*8*3*3*3*4
        assert prof.steps == [("conv0", 8 * 8 * 3 * 3 * 3 * 4)]


# ---------------------------------------------------------------------------
# Span-derived reporting
# ---------------------------------------------------------------------------

def _traced_meter_run():
    clock = SimulatedClock()
    tracer = Tracer(clock, trace_id="t")
    meter = PerfMeter(DeviceProfile())
    tracer.observe_perf(meter)
    root = tracer.start_span("session")
    meter.enable_component("monitoring")
    meter.enable_component("detection")
    with tracer.span("analyze"):
        meter.record(PerfOp.SCREENSHOT)
        with tracer.span("inference"):
            meter.record(PerfOp.INFERENCE)
    meter.record(PerfOp.EVENT_DELIVERED, 7)
    clock.advance(60_000)
    tracer.end_span(root, components=sorted(tracer.components))
    return tracer, meter


class TestSpanDerivedReporting:
    def test_ops_counted_exactly_once(self):
        tracer, meter = _traced_meter_run()
        assert ops_from_spans(tracer.export()) == {
            k: v for k, v in meter.counts().items() if v}

    def test_report_bit_identical_to_meter(self):
        tracer, meter = _traced_meter_run()
        assert report_from_spans(tracer.export()) == meter.report(60_000.0)

    def test_stage_cpu_breakdown(self):
        tracer, _ = _traced_meter_run()
        cpu = stage_cpu_ms(tracer.export())
        p = DeviceProfile()
        assert cpu["analyze"] == pytest.approx(p.screenshot_cpu_ms)
        assert cpu["inference"] == pytest.approx(p.inference_cpu_ms)

    def test_session_root_requires_unique_root(self):
        tracer, _ = _traced_meter_run()
        spans = tracer.export()
        assert session_root(spans)["name"] == "session"
        with pytest.raises(ValueError):
            session_root([s for s in spans if s["name"] != "session"])

    def test_root_must_be_closed_without_duration(self):
        span = Span(name="session", span_id=1, parent_id=None,
                    trace_id="t", start_ms=0.0).to_dict()
        with pytest.raises(ValueError):
            report_from_spans([span])


# ---------------------------------------------------------------------------
# Truncated ring-buffer dumps: the partial-report contract
# ---------------------------------------------------------------------------

def _truncated_meter_run(capacity):
    """The `_traced_meter_run` workload on a tiny tracer ring buffer."""
    clock = SimulatedClock()
    tracer = Tracer(clock, trace_id="t", capacity=capacity)
    meter = PerfMeter(DeviceProfile())
    tracer.observe_perf(meter)
    root = tracer.start_span("session")
    meter.enable_component("monitoring")
    meter.enable_component("detection")
    with tracer.span("analyze"):
        meter.record(PerfOp.SCREENSHOT)
        with tracer.span("inference"):
            meter.record(PerfOp.INFERENCE)
    meter.record(PerfOp.EVENT_DELIVERED, 7)
    clock.advance(60_000)
    tracer.end_span(root, components=sorted(tracer.components))
    return tracer, meter


class TestTruncatedDumps:
    """Oldest-first eviction mid-session: reports stay defined, partial,
    and never over-count — the contract the docstrings promise."""

    def test_eviction_is_counted_never_silent(self):
        tracer, _ = _truncated_meter_run(capacity=2)
        # 3 spans finished, 2 kept: exactly one drop, and it's counted.
        assert len(tracer.finished) == 2
        assert tracer.dropped == 1

    def test_root_survives_mid_session_truncation(self):
        # The session root closes last, so oldest-first eviction can
        # never take it while any other span survives: duration (and
        # the baseline share of a rebuilt report) stays exact.
        tracer, _ = _truncated_meter_run(capacity=2)
        spans = tracer.export()
        assert session_root(spans)["name"] == "session"

    def test_stage_cpu_covers_only_surviving_spans(self):
        full_tracer, _ = _truncated_meter_run(capacity=64)
        trunc_tracer, _ = _truncated_meter_run(capacity=2)
        full = stage_cpu_ms(full_tracer.export())
        partial = stage_cpu_ms(trunc_tracer.export())
        # The evicted "inference" span took its attributed CPU with it.
        assert "inference" not in partial
        for stage in sorted(partial):
            assert partial[stage] <= full[stage] + 1e-12

    def test_partial_report_never_exceeds_meter(self):
        tracer, meter = _truncated_meter_run(capacity=2)
        partial = report_from_spans(tracer.export())
        complete = meter.report(60_000.0)
        # Defined, not an error — and every cost figure undercounts.
        assert partial.cpu_pct <= complete.cpu_pct
        assert partial.power_mw <= complete.power_mw
        # Op totals are exactly the surviving spans' attributions.
        assert ops_from_spans(tracer.export()) != {
            k: v for k, v in meter.counts().items() if v}

    def test_rebuilt_equals_meter_when_nothing_dropped(self):
        tracer, meter = _truncated_meter_run(capacity=64)
        assert tracer.dropped == 0
        assert report_from_spans(tracer.export()) == meter.report(60_000.0)

    def test_root_eviction_raises(self):
        # Truncate so hard even the root is gone: session_root (and so
        # report_from_spans) refuses rather than fabricating a report.
        tracer, _ = _truncated_meter_run(capacity=2)
        spans = [s for s in tracer.export() if s["name"] != "session"]
        with pytest.raises(ValueError):
            report_from_spans(spans)


# ---------------------------------------------------------------------------
# DarpaStats compatibility view + explicit reset (the stop/start fix)
# ---------------------------------------------------------------------------

class TestDarpaStats:
    def test_attributes_are_registry_counters(self):
        stats = DarpaStats()
        stats.retries += 2
        assert stats.registry.counter("darpa.pipeline.retries").value == 2
        stats.registry.counter("darpa.pipeline.retries").inc()
        assert stats.retries == 3

    def test_snapshot_covers_every_counter(self):
        stats = DarpaStats()
        assert set(stats.snapshot()) == set(STAT_COUNTERS)

    def test_value_equality(self):
        a, b = DarpaStats(), DarpaStats()
        assert a == b
        a.cache_hits += 1
        assert a != b

    def test_explicit_reset_zeroes_counters_and_records(self):
        stats = DarpaStats()
        stats.events_seen += 5
        stats.records.append(object())
        stats.reset()
        assert stats.events_seen == 0 and stats.records == []

    def test_stats_survive_stop_start_cycles(self):
        """Counters are cumulative across lifecycle transitions: only an
        explicit reset_stats() zeroes them."""
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(2000)
        seen = service.stats.events_seen
        analyzed = service.stats.screens_analyzed
        assert seen > 0 and analyzed > 0
        service.stop()
        service.start()
        assert service.stats.events_seen == seen
        assert service.stats.screens_analyzed == analyzed
        device.clock.advance(3000)
        assert service.stats.screens_analyzed > analyzed  # keeps counting
        service.reset_stats()
        assert service.stats.events_seen == 0
        assert service.stats.screens_analyzed == 0
        assert service.stats.records == []

    def test_reset_stats_with_perf_zeroes_meter_and_cache_tallies(self):
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(2000)
        assert any(device.perf.counts().values())
        service.reset_stats(reset_perf=True)
        assert not any(device.perf.counts().values())
        if service.screen_cache is not None:
            assert service.screen_cache.hits == 0
            assert service.screen_cache.misses == 0


# ---------------------------------------------------------------------------
# DarpaService wiring
# ---------------------------------------------------------------------------

class TestServiceTracing:
    def _traced_session(self):
        device, app, detector, service = make_session()
        tracer = Tracer(device.clock, trace_id="svc")
        traced = DarpaService(
            device, detector, config=service.config,
            policy=ScreenshotPolicy(consent_given=True), tracer=tracer)
        return device, app, traced, tracer

    def test_tracer_adopts_stats_registry(self):
        _, _, traced, tracer = self._traced_session()
        assert tracer.registry is traced.stats.registry

    def test_pipeline_emits_expected_span_taxonomy(self):
        device, app, traced, tracer = self._traced_session()
        traced.start()
        app.launch()
        device.clock.advance(6000)
        names = {s.name for s in tracer.finished}
        assert {"event", "debounce", "analyze", "screenshot",
                "inference", "decorate"} <= names
        assert not tracer.open_spans
        assert tracer.orphan_ops == {}

    def test_traced_run_matches_untraced_stats(self):
        device, app, detector, plain = make_session()
        plain.start()
        app.launch()
        device.clock.advance(6000)
        device2, app2, traced, tracer = self._traced_session()
        traced.start()
        app2.launch()
        device2.clock.advance(6000)
        assert plain.stats == traced.stats
        assert device.perf.counts() == device2.perf.counts()

    def test_gauges_track_breaker_and_cache(self):
        device, app, traced, tracer = self._traced_session()
        traced.start()
        app.launch()
        device.clock.advance(6000)
        reg = traced.stats.registry
        assert reg.gauge("darpa.breaker.state").value == 0  # CLOSED
        if traced.screen_cache is not None:
            assert reg.gauge("darpa.cache.entries").value == \
                len(traced.screen_cache)

    def test_span_ops_reproduce_meter_counts(self):
        device, app, traced, tracer = self._traced_session()
        traced.start()
        app.launch()
        device.clock.advance(6000)
        derived = ops_from_spans(s.to_dict() for s in tracer.finished)
        expected = {k: v for k, v in device.perf.counts().items() if v}
        assert derived == expected
