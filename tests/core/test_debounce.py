"""Tests for the cut-off time debouncer."""

import pytest

from repro.android import AccessibilityEventType, SimulatedClock
from repro.android.events import AccessibilityEvent
from repro.core import CutoffDebouncer


def ui_event(clock, etype=AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED):
    return AccessibilityEvent(event_type=etype, package="com.demo",
                              timestamp_ms=clock.now_ms)


@pytest.fixture
def clock():
    return SimulatedClock()


class TestQuiescence:
    def test_fires_after_quiet_period(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 200, fired.append)
        deb.feed(ui_event(clock))
        clock.advance(199)
        assert fired == []
        clock.advance(2)
        assert len(fired) == 1

    def test_new_event_restarts_window(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 200, fired.append)
        deb.feed(ui_event(clock))
        clock.advance(150)
        deb.feed(ui_event(clock))  # restart
        clock.advance(150)
        assert fired == []  # only 150ms since last event
        clock.advance(60)
        assert len(fired) == 1

    def test_burst_collapses_to_one_analysis(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 200, fired.append)
        for _ in range(20):
            deb.feed(ui_event(clock))
            clock.advance(50)  # continuous animation, never settles
        assert fired == []
        clock.advance(200)
        assert len(fired) == 1

    def test_fires_once_per_settlement(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 100, fired.append)
        deb.feed(ui_event(clock))
        clock.advance(500)
        assert len(fired) == 1
        clock.advance(500)
        assert len(fired) == 1  # no re-fire without new events

    def test_zero_ct_fires_at_the_same_timestamp(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 0, fired.append)
        deb.feed(ui_event(clock))
        # ct == 0 defers through a zero-delay timer (never synchronously
        # inside event delivery); it fires on the next advance, at the
        # feed timestamp.
        assert fired == []
        assert deb.pending
        clock.advance(0)
        assert len(fired) == 1
        assert fired[0].timestamp_ms == clock.now_ms

    def test_zero_ct_callback_feeding_events_does_not_recurse(self, clock):
        # Regression: _fire used to run synchronously inside feed() when
        # ct == 0, so a settled callback that fed events re-entered the
        # debouncer and recursed.
        fired = []
        deb = CutoffDebouncer(clock, 0, lambda e: None)

        def settled(event):
            fired.append(event)
            if len(fired) < 5:
                deb.feed(ui_event(clock))  # re-entrant feed from callback

        deb.on_settled = settled
        deb.feed(ui_event(clock))
        clock.advance(0)  # drains the whole chain of zero-delay fires
        assert len(fired) == 5
        assert not deb.pending

    def test_callback_receives_latest_event(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 100, fired.append)
        e1 = ui_event(clock)
        deb.feed(e1)
        clock.advance(50)
        e2 = ui_event(clock)
        deb.feed(e2)
        clock.advance(150)
        assert fired == [e2]

    def test_negative_ct_rejected(self, clock):
        with pytest.raises(ValueError):
            CutoffDebouncer(clock, -1, lambda e: None)


class TestNonUiEvents:
    def test_non_ui_events_do_not_arm_timer(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 100, fired.append)
        deb.feed(ui_event(clock, AccessibilityEventType.TYPE_TOUCH_INTERACTION_START))
        clock.advance(500)
        assert fired == []
        assert deb.events_seen == 1

    def test_non_ui_events_do_not_restart_window(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 100, fired.append)
        deb.feed(ui_event(clock))
        clock.advance(60)
        deb.feed(ui_event(clock, AccessibilityEventType.TYPE_TOUCH_INTERACTION_END))
        clock.advance(60)
        assert len(fired) == 1  # 120ms of UI quiet despite the touch event


class TestBookkeeping:
    def test_counts(self, clock):
        deb = CutoffDebouncer(clock, 100, lambda e: None)
        for _ in range(3):
            deb.feed(ui_event(clock))
            clock.advance(300)
        assert deb.events_seen == 3
        assert deb.settled_count == 3

    def test_cancel_pending(self, clock):
        fired = []
        deb = CutoffDebouncer(clock, 100, fired.append)
        deb.feed(ui_event(clock))
        assert deb.pending
        assert deb.cancel_pending()
        clock.advance(500)
        assert fired == []
        assert not deb.cancel_pending()  # nothing left to cancel
