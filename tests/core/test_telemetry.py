"""Unit tests for repro.core.telemetry: quantile sketches, session /
fleet telemetry derivation, exporters, and the SLO burn-rate engine."""

import itertools
import json
import math
from types import SimpleNamespace

import pytest

from repro.android.device import DeviceProfile
from repro.core.telemetry import (
    DEBOUNCE_SKETCH,
    DEFAULT_ALPHA,
    INFERENCE_SKETCH,
    REACTION_SKETCH,
    REACTION_SLACK_MS,
    SCREENSHOT_SKETCH,
    BurnPolicy,
    FleetTelemetry,
    QuantileSketch,
    SessionTelemetry,
    SloEngine,
    SloSpec,
    TELEMETRY_VERSION,
    default_slos,
    merge_registry_snapshots,
    registry_prometheus_lines,
    sketches_from_spans,
)


# ---------------------------------------------------------------------------
# QuantileSketch
# ---------------------------------------------------------------------------

class TestQuantileSketch:
    def test_quantile_within_relative_accuracy(self):
        sketch = QuantileSketch()
        values = [1.0 + 0.37 * i for i in range(1000)]
        for v in values:
            sketch.observe(v)
        values.sort()
        for q in (0.05, 0.5, 0.95, 0.99):
            exact = values[min(len(values) - 1,
                               max(0, math.ceil(q * len(values)) - 1))]
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= 2 * DEFAULT_ALPHA * exact

    def test_zero_and_negative_handling(self):
        sketch = QuantileSketch()
        sketch.observe(0.0)
        sketch.observe(0.0)
        sketch.observe(5.0)
        assert sketch.zero_count == 2
        assert sketch.count == 3
        assert sketch.quantile(0.5) == 0.0
        assert sketch.min == 0.0 and sketch.max == 5.0
        with pytest.raises(ValueError):
            sketch.observe(-1.0)

    def test_count_le_is_bucket_granular(self):
        sketch = QuantileSketch()
        for v in (0.0, 1.0, 10.0, 100.0, 1000.0):
            sketch.observe(v)
        assert sketch.count_le(-1.0) == 0
        assert sketch.count_le(0.0) == 1
        assert sketch.count_le(10.5) == 3
        assert sketch.count_le(2000.0) == 5

    def test_sum_is_exact_in_micros(self):
        sketch = QuantileSketch()
        sketch.observe(0.125)
        sketch.observe(0.375)
        assert sketch.sum_micros == 500
        assert sketch.sum == 0.5

    def test_merge_equals_single_sketch(self):
        values = [0.0, 3.0, 7.0, 42.0, 500.0, 500.0, 9999.0]
        whole = QuantileSketch()
        for v in values:
            whole.observe(v)
        left, right = QuantileSketch(), QuantileSketch()
        for v in values[:3]:
            left.observe(v)
        for v in values[3:]:
            right.observe(v)
        assert left.merge(right).snapshot() == whole.snapshot()

    def test_merge_commutative_and_associative(self):
        parts = []
        for lo in range(3):
            part = QuantileSketch()
            for i in range(40):
                part.observe(1.0 + (lo * 40 + i) * 1.7)
            parts.append(part)

        def fold(order):
            acc = QuantileSketch()
            for i in order:
                fresh = QuantileSketch()
                fresh.merge(parts[i])
                acc.merge(fresh)
            return json.dumps(acc.snapshot(), sort_keys=True)

        assert fold([0, 1, 2]) == fold([2, 0, 1]) == fold([1, 2, 0])

    def test_merge_empty_is_identity(self):
        sketch = QuantileSketch()
        sketch.observe(12.0)
        before = sketch.snapshot()
        sketch.merge(QuantileSketch())
        assert sketch.snapshot() == before
        empty = QuantileSketch()
        empty.merge(QuantileSketch())
        assert empty.count == 0 and empty.snapshot()["min"] is None

    def test_merge_alpha_mismatch_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))

    def test_snapshot_roundtrip(self):
        sketch = QuantileSketch()
        for i, v in enumerate((0.0, 2.0, 30.0, 400.0)):
            sketch.observe(v, exemplar={"session": i, "span_id": i,
                                        "trace_id": f"t{i}"})
        snap = json.loads(json.dumps(sketch.snapshot()))
        clone = QuantileSketch.from_snapshot(snap)
        assert clone.snapshot() == sketch.snapshot()
        assert clone.quantile(0.95) == sketch.quantile(0.95)

    def test_exemplar_keeps_smallest_key(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.observe(100.0, exemplar={"session": 5, "span_id": 9,
                                   "trace_id": "late"})
        b.observe(100.0, exemplar={"session": 1, "span_id": 2,
                                   "trace_id": "early"})
        # Same bucket; merge in both orders keeps the smallest key.
        ab = QuantileSketch().merge(a).merge(b)
        ba = QuantileSketch().merge(b).merge(a)
        assert ab.snapshot() == ba.snapshot()
        assert ab.hottest_exemplar()["trace_id"] == "early"

    def test_hottest_exemplar_tracks_highest_bucket(self):
        sketch = QuantileSketch()
        sketch.observe(1.0, exemplar={"session": 0, "span_id": 1,
                                      "trace_id": "low"})
        sketch.observe(900.0, exemplar={"session": 0, "span_id": 2,
                                        "trace_id": "high"})
        assert sketch.hottest_exemplar()["trace_id"] == "high"
        assert QuantileSketch().hottest_exemplar() is None


# ---------------------------------------------------------------------------
# Span-derived session telemetry
# ---------------------------------------------------------------------------

def _span(span_id, name, start, end, parent=None, ops=None, **attributes):
    return {"name": name, "span_id": span_id, "parent_id": parent,
            "trace_id": "trace-0", "start_ms": start, "end_ms": end,
            "attributes": attributes, "ops": ops or {}}


def make_spans():
    """One settle window, its analysis subtree, in finish order."""
    return [
        _span(2, "debounce", 100.0, 300.0, parent=1),
        _span(4, "screenshot", 300.0, 300.0, parent=3,
              ops={"screenshot": 1}),
        _span(5, "inference", 300.0, 300.0, parent=3,
              ops={"inference": 1}),
        _span(3, "analyze", 300.0, 310.0, parent=1,
              ops={"decoration": 1}, outcome="ok"),
        _span(1, "session", 0.0, 1000.0),
    ]


class TestSketchesFromSpans:
    def test_stage_sketch_derivation(self):
        profile = DeviceProfile()
        sketches = sketches_from_spans(make_spans(), profile=profile,
                                       session=7)
        assert sketches[DEBOUNCE_SKETCH].count == 1
        assert abs(sketches[DEBOUNCE_SKETCH].sum - 200.0) < 3.0
        assert sketches[SCREENSHOT_SKETCH].count == 1
        assert abs(sketches[SCREENSHOT_SKETCH].sum
                   - profile.screenshot_cpu_ms) < 1e-9
        assert sketches[INFERENCE_SKETCH].count == 1
        # Reaction: wall (debounce start 100 -> analyze end 310) plus the
        # analyze subtree's attributed CPU (screenshot+inference+decoration).
        expected = 210.0 + (profile.screenshot_cpu_ms
                            + profile.inference_cpu_ms
                            + profile.decoration_cpu_ms)
        assert sketches[REACTION_SKETCH].count == 1
        assert abs(sketches[REACTION_SKETCH].sum - expected) < 1e-6
        exemplar = sketches[REACTION_SKETCH].hottest_exemplar()
        assert exemplar == {"session": 7, "span_id": 3,
                            "trace_id": "trace-0"}

    def test_failed_analysis_contributes_no_reaction(self):
        spans = [
            _span(2, "debounce", 100.0, 300.0, parent=1),
            _span(3, "analyze", 300.0, 300.0, parent=1, outcome="skipped"),
            _span(1, "session", 0.0, 1000.0),
        ]
        sketches = sketches_from_spans(spans)
        assert sketches[REACTION_SKETCH].count == 0
        assert sketches[DEBOUNCE_SKETCH].count == 1

    def test_from_result_requires_trace(self):
        untraced = SimpleNamespace(spans=None, metrics={})
        with pytest.raises(ValueError):
            SessionTelemetry.from_result(0, untraced)

    def test_from_result_filters_pipeline_counters(self):
        result = SimpleNamespace(
            spans=make_spans(),
            metrics={"counters": {
                "darpa.pipeline.screens_analyzed": 4,
                "darpa.pipeline.retries": 2,
                "darpa.stage.analyze.count": 99,       # not a health counter
                "darpa.trace.dropped_spans": 1,        # not pipeline-prefixed
            }})
        telemetry = SessionTelemetry.from_result(3, result)
        assert telemetry.counters["screens_analyzed"] == 4
        assert telemetry.counters["retries"] == 2
        assert telemetry.counters["breaker_opens"] == 0
        assert "analyze.count" not in telemetry.counters


# ---------------------------------------------------------------------------
# FleetTelemetry
# ---------------------------------------------------------------------------

def fake_result(seed):
    return SimpleNamespace(
        spans=make_spans(),
        metrics={"counters": {"darpa.pipeline.screens_analyzed": seed + 1,
                              "darpa.pipeline.decorations_drawn": seed}})


class TestFleetTelemetry:
    def test_from_results_counts_sessions_and_counters(self):
        fleet = FleetTelemetry.from_results([fake_result(i) for i in range(3)])
        assert fleet.sessions == 3
        assert fleet.counters["screens_analyzed"] == 1 + 2 + 3
        assert fleet.counters["decorations_drawn"] == 0 + 1 + 2
        assert fleet.sketches[REACTION_SKETCH].count == 3

    def test_sharded_merge_is_byte_identical(self):
        results = [fake_result(i) for i in range(6)]
        whole = FleetTelemetry.from_results(results)
        left = FleetTelemetry.from_results(results[:2])
        mid = FleetTelemetry.from_results(results[2:3], start_index=2)
        right = FleetTelemetry.from_results(results[3:], start_index=3)
        merged = FleetTelemetry().merge(right).merge(left).merge(mid)
        assert (json.dumps(merged.snapshot(), sort_keys=True)
                == json.dumps(whole.snapshot(), sort_keys=True))

    def test_snapshot_roundtrip_and_version_gate(self):
        fleet = FleetTelemetry.from_results([fake_result(0)])
        snap = json.loads(json.dumps(fleet.snapshot()))
        assert snap["version"] == TELEMETRY_VERSION
        clone = FleetTelemetry.from_snapshot(snap)
        assert clone.snapshot() == fleet.snapshot()
        snap["version"] = TELEMETRY_VERSION + 1
        with pytest.raises(ValueError):
            FleetTelemetry.from_snapshot(snap)

    def test_prometheus_exposition(self):
        text = FleetTelemetry.from_results([fake_result(1)]).to_prometheus()
        assert '# TYPE darpa_latency_reaction_ms summary' in text
        assert 'darpa_latency_reaction_ms{quantile="0.95"}' in text
        assert 'darpa_pipeline_screens_analyzed_total 2' in text
        assert text.rstrip().endswith("darpa_fleet_sessions 1")

    def test_merge_alpha_mismatch_raises(self):
        with pytest.raises(ValueError):
            FleetTelemetry(alpha=0.01).merge(FleetTelemetry(alpha=0.02))


class TestRegistryMerge:
    def test_counters_add_gauges_last_write(self):
        merged = merge_registry_snapshots([
            {"counters": {"a": 1}, "gauges": {"g": 1.0}},
            {"counters": {"a": 2, "b": 5}, "gauges": {"g": 3.5}},
        ])
        assert merged["counters"] == {"a": 3, "b": 5}
        assert merged["gauges"] == {"g": 3.5}

    def test_histograms_add_and_gate_bucket_mismatch(self):
        hist = {"buckets": [1.0, 10.0], "bucket_counts": [1, 2, 3],
                "count": 6, "sum": 30.0}
        merged = merge_registry_snapshots(
            [{"histograms": {"h": hist}}, {"histograms": {"h": hist}}])
        assert merged["histograms"]["h"]["bucket_counts"] == [2, 4, 6]
        assert merged["histograms"]["h"]["count"] == 12
        other = dict(hist, buckets=[1.0, 99.0])
        with pytest.raises(ValueError):
            merge_registry_snapshots(
                [{"histograms": {"h": hist}}, {"histograms": {"h": other}}])

    def test_histogram_sums_invariant_to_snapshot_order(self):
        # darpalint DL004 regression: the merged float sum must not
        # depend on shard merge order.  These magnitudes make naive
        # left-to-right addition order-sensitive (1e16 + 1.0 == 1e16),
        # so only an exactly-rounded fold passes for every permutation.
        def snap(value):
            return {"histograms": {"h": {"buckets": [1.0],
                                         "bucket_counts": [1, 0],
                                         "count": 1, "sum": value}}}

        snaps = [snap(1e16), snap(1.0), snap(-1e16), snap(1.0)]
        want = merge_registry_snapshots(snaps)["histograms"]["h"]["sum"]
        assert want == 2.0
        for order in itertools.permutations(range(4)):
            got = merge_registry_snapshots([snaps[i] for i in order])
            assert got["histograms"]["h"]["sum"] == want

    def test_prometheus_histogram_is_cumulative(self):
        lines = registry_prometheus_lines({
            "counters": {"darpa.pipeline.retries": 4},
            "gauges": {},
            "histograms": {"h": {"buckets": [1.0, 10.0],
                                 "bucket_counts": [1, 2, 3],
                                 "count": 6, "sum": 30.0}},
        })
        text = "\n".join(lines)
        assert "darpa_pipeline_retries_total 4" in text
        assert 'h_bucket{le="1.0"} 1' in text
        assert 'h_bucket{le="10.0"} 3' in text
        assert 'h_bucket{le="+Inf"} 6' in text


# ---------------------------------------------------------------------------
# SLO engine
# ---------------------------------------------------------------------------

def ratio_session(index, bad, total):
    return SessionTelemetry(session=index, sketches={},
                            counters={"bad": bad, "good": total - bad})


RATIO_SPEC = SloSpec(
    name="ratio", objective=0.9, kind="ratio", bad_counter="bad",
    total_counters=("bad", "good"),
    policies=(BurnPolicy(severity="page", fast_window=2, slow_window=4,
                         burn_threshold=5.0),))


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", objective=1.0, kind="ratio")
        with pytest.raises(ValueError):
            SloSpec(name="x", objective=0.9, kind="median")

    def test_quantile_tally(self):
        sketch = QuantileSketch()
        for v in (10.0, 20.0, 300.0):
            sketch.observe(v)
        spec = SloSpec(name="p95", objective=0.95, kind="quantile",
                       sketch="lat", threshold_ms=100.0)
        telemetry = SessionTelemetry(session=0, sketches={"lat": sketch})
        assert spec.tally(telemetry) == (1, 3)
        assert spec.tally(SessionTelemetry(session=0, sketches={})) == (0, 0)

    def test_ratio_tally(self):
        assert RATIO_SPEC.tally(ratio_session(0, 3, 10)) == (3, 10)

    def test_default_slos_reaction_budget(self):
        profile = DeviceProfile()
        specs = {s.name: s for s in default_slos(ct_ms=200.0)}
        assert specs["reaction_p95"].threshold_ms == (
            200.0 + profile.screenshot_cpu_ms + profile.inference_cpu_ms
            + REACTION_SLACK_MS)
        assert set(specs) == {"reaction_p95", "decoration_success",
                              "fallback_share", "capture_success",
                              "watchdog_aborts", "breaker_recovery"}
        assert specs["breaker_recovery"].bad_counter == "probe_failures"


class TestSloEngine:
    def test_clean_series_yields_no_alerts(self):
        series = [ratio_session(i, 0, 10) for i in range(20)]
        report = SloEngine([RATIO_SPEC]).evaluate(series)
        assert report.all_met
        assert report.alerts == []
        assert report.results[0].compliance == 1.0
        assert report.results[0].burn_rate == 0.0

    def test_alert_fires_on_transition_and_rearms(self):
        # budget 0.1, threshold 5.0: both windows must burn >= 50% bad.
        bads = [0, 0, 10, 10, 0, 0, 10, 10]
        series = [ratio_session(i, b, 10) for i, b in enumerate(bads)]
        report = SloEngine([RATIO_SPEC]).evaluate(series, session_ms=1000.0)
        alerts = report.alerts
        assert [a.session_index for a in alerts] == [3, 6]
        first = alerts[0]
        assert first.severity == "page"
        assert first.sim_time_ms == 4000.0
        assert first.fast_burn == pytest.approx(10.0)
        assert first.slow_burn == pytest.approx(5.0)

    def test_report_is_deterministic(self):
        bads = [0, 2, 10, 10, 4, 0, 9, 10, 1, 0]
        series = [ratio_session(i, b, 10) for i, b in enumerate(bads)]
        engine = SloEngine([RATIO_SPEC])
        a = engine.evaluate(series).to_dict()
        b = engine.evaluate(series).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["all_met"] is False
        assert a["slos"][0]["bad"] == sum(bads)

    def test_empty_windows_do_not_fire(self):
        series = [SessionTelemetry(session=i, sketches={}) for i in range(10)]
        report = SloEngine([RATIO_SPEC]).evaluate(series)
        assert report.all_met and report.alerts == []
