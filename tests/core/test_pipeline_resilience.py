"""End-to-end tests for the resilient DARPA serving path.

Each test injects one class of fault into a small simulated session and
asserts the pipeline degrades the way :mod:`repro.core.pipeline`
promises: retries on the clock, breaker trips, heuristic fallback,
watchdog skips — and bit-identical behavior when no fault fires.
"""

from typing import List, Optional

import numpy as np
import pytest

from repro.android import AppSpec, Device, SimulatedApp, UiStep, UiTimeline, View
from repro.android.apps import ScreenState
from repro.android.device import PerfOp
from repro.android.faults import FaultPlan, FaultyDevice
from repro.core import BreakerState, DarpaConfig, DarpaService, ScreenshotPolicy
from repro.geometry import Rect, ScoredBox
from repro.imaging.color import PALETTE


def box(score=0.9) -> ScoredBox:
    return ScoredBox(rect=Rect(10.0, 10.0, 20, 20), label="UPO", score=score)


def screen(color: str) -> ScreenState:
    return ScreenState(root=View(bounds=Rect(0, 0, 360, 568),
                                 bg_color=PALETTE[color]), name=color)


def launch(device, colors, period_ms=1000):
    timeline = UiTimeline([UiStep(i * period_ms, screen(c))
                           for i, c in enumerate(colors)])
    app = SimulatedApp(device, AppSpec(package="com.demo", timeline=timeline))
    app.launch()
    return app


def service_for(device, detector, **config_kwargs) -> DarpaService:
    config = DarpaConfig(ct_ms=200.0, **config_kwargs)
    svc = DarpaService(device, detector, config=config,
                       policy=ScreenshotPolicy(consent_given=True))
    svc.start()
    return svc


class CountingDetector:
    def __init__(self, detections=None):
        self.calls = 0
        self.detections = [box()] if detections is None else detections

    def detect_screen(self, screen_image: np.ndarray, refine: bool = True,
                      conf_threshold: Optional[float] = None
                      ) -> List[ScoredBox]:
        self.calls += 1
        return list(self.detections)


class CrashingDetector(CountingDetector):
    """Raises on the first ``crashes`` calls, then behaves."""

    def __init__(self, crashes=10**9):
        super().__init__()
        self.crashes = crashes

    def detect_screen(self, screen_image, refine=True, conf_threshold=None):
        self.calls += 1
        if self.calls <= self.crashes:
            raise RuntimeError("native inference aborted")
        return [box()]


class SlowDetector(CountingDetector):
    """Reports a fixed simulated inference latency."""

    def __init__(self, latency_ms):
        super().__init__()
        self.last_detect_ms = latency_ms


class ScriptedRng:
    """Stands in for the injector's RNG with a fixed decision script."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0) if self.values else 1.0


class TestScreenshotRetry:
    def test_permanent_failure_exhausts_retries_without_crashing(self):
        device = FaultyDevice(plan=FaultPlan(screenshot_failure_rate=1.0),
                              seed=0)
        detector = CountingDetector()
        svc = service_for(device, detector)
        launch(device, ["white"])
        device.clock.advance(5000)
        assert svc.stats.screens_analyzed == 0
        assert detector.calls == 0
        # One initial attempt + (max_attempts - 1) backoff retries.
        assert svc.stats.screenshot_failures == svc.retry_policy.max_attempts
        assert svc.stats.retries == svc.retry_policy.max_attempts - 1

    def test_transient_failure_recovers_on_retry(self):
        device = FaultyDevice(plan=FaultPlan(screenshot_failure_rate=0.5),
                              seed=0)
        # First capture fails (0.4 < 0.5), the retry succeeds (0.9).
        device.faults.rng = ScriptedRng([0.4, 0.9])
        detector = CountingDetector()
        svc = service_for(device, detector)
        launch(device, ["white"])
        device.clock.advance(5000)
        assert svc.stats.screenshot_failures == 1
        assert svc.stats.retries == 1
        assert svc.stats.screens_analyzed == 1
        assert detector.calls == 1
        assert not svc.stats.records[0].degraded

    def test_retry_waits_out_the_backoff(self):
        device = FaultyDevice(plan=FaultPlan(screenshot_failure_rate=0.5),
                              seed=0)
        device.faults.rng = ScriptedRng([0.4, 0.9])
        svc = service_for(device, CountingDetector())
        launch(device, ["white"])
        device.clock.advance(210)  # settled + first (failed) attempt
        assert svc.stats.screenshot_failures == 1
        assert svc.stats.screens_analyzed == 0
        # Backoff for attempt 1 is base * (1 + jitter) <= 62.5ms.
        device.clock.advance(63)
        assert svc.stats.screens_analyzed == 1

    def test_new_settled_screen_cancels_pending_retry(self):
        device = FaultyDevice(plan=FaultPlan(screenshot_failure_rate=0.5),
                              seed=0)
        # Screen 1 keeps failing; screen 2's capture succeeds.
        device.faults.rng = ScriptedRng([0.4, 0.9])
        svc = service_for(device, CountingDetector(),
                          retry_base_delay_ms=2000.0,
                          retry_max_delay_ms=2000.0, retry_jitter_frac=0.0)
        launch(device, ["white", "dark_gray"], period_ms=1000)
        # Screen 1 settles at 200ms and fails; its retry is due at
        # 2200ms — but screen 2 settles at 1200ms first.
        device.clock.advance(4000)
        assert svc.stats.screenshot_failures == 1  # retry never ran
        assert svc.stats.screens_analyzed == 1

    def test_stop_cancels_pending_retry(self):
        device = FaultyDevice(plan=FaultPlan(screenshot_failure_rate=1.0),
                              seed=0)
        svc = service_for(device, CountingDetector())
        launch(device, ["white"])
        device.clock.advance(210)
        assert svc.stats.screenshot_failures == 1
        svc.stop()
        device.clock.advance(10_000)
        assert svc.stats.screenshot_failures == 1  # no zombie retries


class TestBreakerAndFallback:
    def test_breaker_opens_and_degrades_to_heuristic(self):
        device = FaultyDevice(plan=FaultPlan(), seed=0)
        detector = CrashingDetector()
        svc = service_for(device, detector, breaker_failure_threshold=2,
                          breaker_cooldown_ms=10**9)
        launch(device, ["white", "dark_gray", "white", "dark_gray"])
        device.clock.advance(5000)
        assert svc.stats.screens_analyzed == 4
        assert svc.stats.detector_failures == 2
        assert svc.stats.breaker_opens == 1
        assert svc.breaker.state is BreakerState.OPEN
        # While open the CNN is never invoked again.
        assert detector.calls == 2
        # Every screen was still served, by the metadata heuristic.
        assert svc.stats.fallback_detections == 4
        assert all(r.degraded for r in svc.stats.records)
        assert device.perf.count(PerfOp.FALLBACK_INFERENCE) == 4
        assert device.perf.count(PerfOp.INFERENCE) == 0

    def test_half_open_probe_recovers_and_skips_stale_cache(self):
        device = Device(seed=0)
        detector = CrashingDetector(crashes=1)
        svc = service_for(device, detector, breaker_failure_threshold=1,
                          breaker_cooldown_ms=300.0)
        # The same screen twice: the degraded screen-1 verdict must NOT
        # have been cached, so screen 2 re-runs the (recovered) CNN.
        launch(device, ["white", "white"])
        device.clock.advance(4000)
        assert svc.stats.breaker_opens == 1
        assert svc.breaker.state is BreakerState.CLOSED
        assert detector.calls == 2  # crash, then the half-open probe
        assert svc.stats.fallback_detections == 1
        assert svc.stats.cache_hits == 0
        degraded = [r.degraded for r in svc.stats.records]
        assert degraded == [True, False]

    def test_fallback_disabled_yields_empty_degraded_records(self):
        device = Device(seed=0)
        svc = service_for(device, CrashingDetector(),
                          breaker_failure_threshold=1,
                          fallback_to_heuristic=False)
        launch(device, ["white"])
        device.clock.advance(2000)
        assert svc.fallback_detector is None
        assert svc.stats.screens_analyzed == 1
        assert svc.stats.fallback_detections == 0
        record = svc.stats.records[0]
        assert record.degraded and not list(record.detections)


class TestWatchdogDeadline:
    def test_over_budget_analyses_are_abandoned(self):
        device = Device(seed=0)
        detector = SlowDetector(latency_ms=500.0)
        svc = service_for(device, detector, deadline_ms=250.0,
                          breaker_failure_threshold=100)
        launch(device, ["white", "dark_gray", "white"])
        device.clock.advance(4000)
        assert svc.stats.deadline_skips == 3
        assert svc.stats.screens_analyzed == 0
        assert svc.stats.records == []
        # Skipped analyses must not poison the cache either.
        assert svc.stats.cache_hits == 0

    def test_deadline_overruns_feed_the_breaker(self):
        device = Device(seed=0)
        detector = SlowDetector(latency_ms=500.0)
        svc = service_for(device, detector, deadline_ms=250.0,
                          breaker_failure_threshold=2,
                          breaker_cooldown_ms=10**9)
        launch(device, ["white", "dark_gray", "white"])
        device.clock.advance(4000)
        assert svc.stats.deadline_skips == 2
        assert svc.stats.breaker_opens == 1
        # Screen 3 skipped the slow CNN entirely and used the heuristic.
        assert svc.stats.fallback_detections == 1
        assert detector.calls == 2

    def test_fast_inference_passes_the_deadline(self):
        device = Device(seed=0)
        detector = SlowDetector(latency_ms=100.0)
        svc = service_for(device, detector, deadline_ms=250.0)
        launch(device, ["white"])
        device.clock.advance(2000)
        assert svc.stats.deadline_skips == 0
        assert svc.stats.screens_analyzed == 1


class TestOverlayRejection:
    def test_rejected_mounts_are_absorbed(self):
        device = FaultyDevice(plan=FaultPlan(overlay_rejection_rate=1.0),
                              seed=0)
        svc = service_for(device, CountingDetector())
        launch(device, ["white"])
        device.clock.advance(2000)
        # Analysis completed and the screen was flagged; only the
        # decoration mounts failed.
        assert svc.stats.screens_analyzed == 1
        assert svc.stats.auis_flagged == 1
        assert svc.stats.decorations_drawn == 0
        assert svc.stats.overlay_rejections >= 1
        assert device.window_manager.overlays() == []


class TestZeroFaultParity:
    def run_one(self, device):
        detector = CountingDetector()
        svc = service_for(device, detector)
        launch(device, ["white", "dark_gray", "white"])
        device.clock.advance(4000)
        return svc, detector

    def test_null_plan_is_bit_identical_to_plain_device(self):
        plain_svc, plain_det = self.run_one(Device(seed=0))
        null_svc, null_det = self.run_one(
            FaultyDevice(plan=FaultPlan(), seed=0))
        assert plain_svc.stats == null_svc.stats
        assert plain_det.calls == null_det.calls
        for op in PerfOp:
            assert (plain_svc.device.perf.count(op)
                    == null_svc.device.perf.count(op)), op
        assert all(v == 0 for v in null_svc.device.faults.counts.values())

    def test_resilience_counters_zero_on_clean_run(self):
        svc, _ = self.run_one(Device(seed=0))
        stats = svc.stats
        assert (stats.screenshot_failures, stats.retries,
                stats.detector_failures, stats.breaker_opens,
                stats.fallback_detections, stats.deadline_skips,
                stats.overlay_rejections) == (0, 0, 0, 0, 0, 0, 0)
        assert not any(r.degraded for r in stats.records)
