"""Tests for the screen-fingerprint detection cache."""

from typing import List, Optional

import numpy as np
import pytest

from repro.android import AppSpec, Device, SimulatedApp, UiStep, UiTimeline, View
from repro.android.apps import ScreenState
from repro.android.device import PerfOp
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.core.screencache import ScreenFingerprintCache
from repro.geometry import Rect, ScoredBox
from repro.imaging.color import PALETTE


def box(x=10.0, y=10.0) -> ScoredBox:
    return ScoredBox(rect=Rect(x, y, 20, 20), label="UPO", score=0.9)


class TestFingerprint:
    def test_identical_frames_share_a_key(self):
        cache = ScreenFingerprintCache()
        rng = np.random.default_rng(0)
        frame = rng.random((64, 48, 3))
        assert cache.fingerprint(frame) == cache.fingerprint(frame.copy())

    def test_imperceptible_noise_is_invariant(self):
        cache = ScreenFingerprintCache()
        frame = np.full((64, 48, 3), 0.5)
        noisy = frame + np.random.default_rng(1).normal(0, 1e-4, frame.shape)
        assert cache.fingerprint(frame) == cache.fingerprint(noisy)

    def test_layout_change_changes_the_key(self):
        cache = ScreenFingerprintCache()
        frame = np.full((64, 48, 3), 1.0)
        moved = frame.copy()
        moved[10:30, 5:25] = 0.0  # a button-sized dark region
        assert cache.fingerprint(frame) != cache.fingerprint(moved)

    def test_integer_rasters_match_normalized_floats(self):
        cache = ScreenFingerprintCache()
        ints = np.full((32, 32, 3), 128, dtype=np.uint8)
        floats = ints.astype(np.float64) / 255.0
        assert cache.fingerprint(ints) == cache.fingerprint(floats)

    def test_small_frames_are_fingerprintable(self):
        cache = ScreenFingerprintCache()
        assert cache.fingerprint(np.zeros((4, 3, 3)))  # below grid size


class TestLru:
    def test_hit_and_miss_counting(self):
        cache = ScreenFingerprintCache(capacity=4)
        frame = np.full((32, 32, 3), 0.5)
        assert cache.lookup(frame) is None
        cache.put(cache.fingerprint(frame), [box()])
        assert cache.lookup(frame) == (box(),)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_capacity_evicts_least_recently_used(self):
        cache = ScreenFingerprintCache(capacity=2)
        keys = [bytes([i]) for i in range(3)]
        cache.put(keys[0], [box(1.0)])
        cache.put(keys[1], [box(2.0)])
        assert cache.get(keys[0]) is not None  # 0 freshened, 1 is oldest
        cache.put(keys[2], [box(3.0)])
        assert len(cache) == 2
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[2]) is not None

    def test_cached_entries_are_isolated_from_the_put_list(self):
        cache = ScreenFingerprintCache()
        detections = [box()]
        cache.put(b"k", detections)
        detections.append(box(50.0))  # caller mutates its list afterwards
        assert cache.get(b"k") == (box(),)

    def test_entries_are_immutable_tuples(self):
        # Aliasing regression: entries used to be handed out as lists a
        # caller (or the decorator consuming them) could mutate,
        # poisoning every future hit.  Tuples make that impossible.
        cache = ScreenFingerprintCache()
        cache.put(b"k", [box()])
        out = cache.get(b"k")
        assert isinstance(out, tuple)
        with pytest.raises(AttributeError):
            out.append(box(60.0))
        assert cache.get(b"k") == (box(),)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ScreenFingerprintCache(capacity=0)
        with pytest.raises(ValueError):
            ScreenFingerprintCache(grid=0)
        with pytest.raises(ValueError):
            ScreenFingerprintCache(levels=1)


class CountingDetector:
    """Returns a fixed detection; counts how often the CNN would run."""

    def __init__(self):
        self.calls = 0

    def detect_screen(self, screen_image: np.ndarray, refine: bool = True,
                      conf_threshold: Optional[float] = None
                      ) -> List[ScoredBox]:
        self.calls += 1
        return [box()]


def run_session(config: DarpaConfig):
    """Three settled screens: white, dark, white again."""
    device = Device(seed=0)

    def screen(color):
        return ScreenState(root=View(bounds=Rect(0, 0, 360, 568),
                                     bg_color=PALETTE[color]), name=color)

    timeline = UiTimeline([
        UiStep(0, screen("white")),
        UiStep(1000, screen("dark_gray")),
        UiStep(2000, screen("white")),
    ])
    app = SimulatedApp(device, AppSpec(package="com.demo", timeline=timeline))
    detector = CountingDetector()
    service = DarpaService(device, detector, config=config,
                           policy=ScreenshotPolicy(consent_given=True))
    service.start()
    app.launch()
    device.clock.advance(4000)
    return device, detector, service


class TestServiceIntegration:
    def test_repeated_screen_skips_the_detector(self):
        device, detector, service = run_session(DarpaConfig(ct_ms=200.0))
        assert service.stats.screens_analyzed == 3
        # The white screen recurs: 2 CNN runs, 1 replay from cache.
        assert detector.calls == 2
        assert service.stats.cache_hits == 1
        assert service.stats.cache_misses == 2
        assert service.screen_cache.hits == 1

    def test_probes_are_billed_hits_skip_inference(self):
        device, detector, service = run_session(DarpaConfig(ct_ms=200.0))
        assert device.perf.count(PerfOp.CACHE_PROBE) == 3
        assert device.perf.count(PerfOp.INFERENCE) == 2
        report = device.perf.report(4000)
        assert report.counts["cache_probe"] == 3

    def test_cache_hit_still_decorates(self):
        device, detector, service = run_session(DarpaConfig(ct_ms=200.0))
        # Every analyzed screen got detections (cached or fresh).
        assert all(r.detections for r in service.stats.records)
        assert service.stats.decorations_drawn > 0

    def test_zero_capacity_disables_cache(self):
        device, detector, service = run_session(
            DarpaConfig(ct_ms=200.0, screen_cache_size=0))
        assert service.screen_cache is None
        assert detector.calls == 3
        assert service.stats.cache_hits == 0
        assert device.perf.count(PerfOp.CACHE_PROBE) == 0

    def test_stub_screenshots_disable_cache(self):
        device, detector, service = run_session(
            DarpaConfig(ct_ms=200.0, stub_screenshots=True))
        assert service.screen_cache is None
        assert detector.calls == 3
        assert device.perf.count(PerfOp.CACHE_PROBE) == 0

    def test_probe_cost_in_overhead_model(self):
        device, _, _ = run_session(DarpaConfig(ct_ms=200.0))
        profile = device.perf.profile
        with_probes = device.perf.report(60_000)
        probe_cpu_pct = (device.perf.count(PerfOp.CACHE_PROBE)
                         * profile.cache_probe_cpu_ms / 60_000 * 100.0)
        # Probes are billed, but one avoided inference (100 CPU-ms)
        # dwarfs all three probes (2 CPU-ms each).
        assert probe_cpu_pct > 0
        assert probe_cpu_pct < profile.inference_cpu_ms / 60_000 * 100.0
        assert with_probes.counts["cache_probe"] == 3
