"""End-to-end tests of DarpaService with a scripted fake detector."""

from typing import List, Optional

import numpy as np
import pytest

from repro.android import (
    AppSpec,
    Device,
    SemanticRole,
    SimulatedApp,
    UiStep,
    UiTimeline,
    View,
)
from repro.android.apps import ScreenState
from repro.core import DarpaConfig, DarpaService, ScreenshotPolicy
from repro.geometry import Rect, ScoredBox
from repro.imaging.color import PALETTE


class OracleDetector:
    """A stand-in detector that reads the ground truth off the device.

    Pipeline tests should test the *pipeline* — debounce timing,
    screenshot lifecycle, decoration placement — not the CV model, so
    the oracle answers from the foreground screen's labeled boxes.
    """

    def __init__(self, device: Device, app: "SimulatedApp"):
        self.device = device
        self.app = app
        self.calls = 0

    def detect_screen(self, screen_image: np.ndarray, refine: bool = True,
                      conf_threshold: Optional[float] = None) -> List[ScoredBox]:
        self.calls += 1
        state = self.app.current
        if state is None or not state.is_aui:
            return []
        top = self.device.window_manager.top_app_window()
        offset = top.offset if top else None
        out = []
        for role, rect in state.label_boxes:
            box = rect.offset_by(offset) if offset else rect
            out.append(ScoredBox(rect=box, label=role, score=0.95))
        return out


def aui_screen():
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    ago = root.add_child(View(bounds=Rect(80, 250, 200, 60), clickable=True,
                              role=SemanticRole.AGO, bg_color=PALETTE["red"]))
    closed = []
    upo = root.add_child(View(bounds=Rect(320, 16, 24, 24), clickable=True,
                              role=SemanticRole.UPO,
                              on_click=lambda: closed.append(1)))
    state = ScreenState(root=root, is_aui=True, name="aui",
                        label_boxes=[("AGO", ago.bounds), ("UPO", upo.bounds)])
    state.closed = closed  # type: ignore[attr-defined]
    return state


def plain_screen(name="plain"):
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    return ScreenState(root=root, name=name)


def make_session(ct_ms=200.0, auto_bypass=False, steps=None):
    device = Device(seed=0)
    timeline = UiTimeline(steps or [
        UiStep(0, plain_screen("a"), minor_updates=3, minor_spacing_ms=50),
        UiStep(1000, aui_screen()),
        UiStep(4000, plain_screen("b")),
    ])
    app = SimulatedApp(device, AppSpec(package="com.demo", timeline=timeline))
    detector = OracleDetector(device, app)
    service = DarpaService(
        device, detector,
        config=DarpaConfig(ct_ms=ct_ms, auto_bypass=auto_bypass),
        policy=ScreenshotPolicy(consent_given=True),
    )
    return device, app, detector, service


class TestLifecycle:
    def test_start_requires_consent(self):
        device, app, detector, _ = make_session()
        service = DarpaService(device, detector)  # default: no consent
        from repro.core import ConsentError
        with pytest.raises(ConsentError):
            service.start()

    def test_components_resident_after_start(self):
        device, app, detector, service = make_session()
        service.start()
        report = device.perf.report(60_000)
        assert report.memory_mb > 4291.96  # components charged

    def test_stop_clears_overlays_and_timers(self):
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(2000)
        assert device.window_manager.overlays()  # decorated the AUI
        service.stop()
        assert device.window_manager.overlays() == []
        assert not service.running


class TestAnalysisFlow:
    def test_settled_screens_analyzed(self):
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(6000)
        # Screens: a (settles after minor updates), aui, b.
        assert service.stats.screens_analyzed == 3
        assert service.stats.auis_flagged == 1

    def test_aui_decorated_with_calibrated_overlays(self):
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(2000)
        overlays = device.window_manager.overlays()
        assert len(overlays) == 2  # AGO + UPO decorations
        # The UPO decoration must ring the true on-screen position.
        margin = service.config.style.margin
        upo_overlay = min(overlays, key=lambda w: w.root.bounds.area)
        loc = device.window_manager.get_location_on_screen(upo_overlay.root)
        assert loc.x == pytest.approx(320 - margin)
        assert loc.y == pytest.approx(16 + 24 - margin)  # +status bar

    def test_screenshots_always_rinsed(self):
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(6000)
        assert service.policy.outstanding == 0
        assert service.policy.captures == service.stats.screens_analyzed

    def test_continuous_animation_never_analyzed(self):
        steps = [UiStep(0, plain_screen(), minor_updates=100,
                        minor_spacing_ms=50)]
        device, app, detector, service = make_session(ct_ms=200, steps=steps)
        service.start()
        app.launch()
        device.clock.advance(4000)
        assert service.stats.screens_analyzed == 0  # never quiet for 200ms

    def test_trusted_package_skipped(self):
        device, app, detector, _ = make_session()
        service = DarpaService(
            device, detector,
            config=DarpaConfig(trusted_packages=("com.demo",)),
            policy=ScreenshotPolicy(consent_given=True),
        )
        service.start()
        app.launch()
        device.clock.advance(6000)
        assert service.stats.screens_analyzed == 0

    def test_old_decorations_removed_before_next_analysis(self):
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(6000)  # past the plain 'b' screen
        # AUI decorations must be gone once a non-AUI screen settled.
        assert device.window_manager.overlays() == []


class TestAutoBypass:
    def test_bypass_clicks_the_upo(self):
        device, app, detector, service = make_session(auto_bypass=True)
        service.start()
        app.launch()
        device.clock.advance(2000)
        assert service.stats.bypass_clicks == 1
        aui_state = app.spec.timeline.steps[1].screen
        assert aui_state.closed == [1]  # the real view got the click
        # Bypass replaces decoration.
        assert device.window_manager.overlays() == []


class TestStatsRecords:
    def test_records_carry_package_and_flag(self):
        device, app, detector, service = make_session()
        service.start()
        app.launch()
        device.clock.advance(6000)
        flagged = [r for r in service.stats.records if r.flagged_aui]
        assert len(flagged) == 1
        assert flagged[0].package == "com.demo"
