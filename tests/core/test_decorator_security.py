"""Tests for view decoration (Fig 4 calibration) and security policy."""

import numpy as np
import pytest

from repro.android import AccessibilityService, Device, View
from repro.core import (
    ConsentError,
    DARPA_MANIFEST,
    DecorationStyle,
    Manifest,
    ScreenshotPolicy,
    ViewDecorator,
)
from repro.core.security import ManifestViolation
from repro.geometry import Rect, ScoredBox


@pytest.fixture
def device():
    return Device(seed=0)


def attach_app(device, fullscreen=False):
    root = View(bounds=Rect(0, 0, 360, 568))
    device.window_manager.attach_app_window(root, "com.demo",
                                            fullscreen=fullscreen)
    return root


def upo_detection(x=300, y=60, s=24):
    return ScoredBox(rect=Rect(x, y, s, s), label="UPO", score=0.9)


class TestCalibration:
    """The paper's Figure 4: decorations without calibration land low."""

    def test_calibrated_decoration_matches_screen_position(self, device):
        attach_app(device, fullscreen=False)
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc)
        det = upo_detection(x=300, y=60)
        applied = deco.decorate([det])
        assert len(applied) == 1
        on_screen = device.window_manager.get_location_on_screen(applied[0].view)
        margin = deco.style.margin
        assert on_screen.x == pytest.approx(300 - margin)
        assert on_screen.y == pytest.approx(60 - margin)

    def test_uncalibrated_decoration_off_by_status_bar(self, device):
        attach_app(device, fullscreen=False)
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc, calibrate=False)
        applied = deco.decorate([upo_detection(x=300, y=60)])
        on_screen = device.window_manager.get_location_on_screen(applied[0].view)
        # Fig 4a: positioned BELOW the actual option by the bar height.
        assert on_screen.y == pytest.approx(60 - deco.style.margin + 24)

    def test_fullscreen_needs_no_offset(self, device):
        attach_app(device, fullscreen=True)
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc)
        applied = deco.decorate([upo_detection()])
        on_screen = device.window_manager.get_location_on_screen(applied[0].view)
        assert on_screen.y == pytest.approx(60 - deco.style.margin)


class TestDecorationLifecycle:
    def test_remove_all_clears_overlays(self, device):
        attach_app(device)
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc)
        deco.decorate([upo_detection(), upo_detection(x=100, y=300)])
        assert len(device.window_manager.overlays()) == 2
        assert deco.remove_all() == 2
        assert device.window_manager.overlays() == []
        assert deco.active == []

    def test_style_can_skip_ago(self, device):
        attach_app(device)
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc, style=DecorationStyle(decorate_ago=False))
        dets = [upo_detection(),
                ScoredBox(rect=Rect(80, 250, 200, 60), label="AGO", score=0.8)]
        applied = deco.decorate(dets)
        assert [a.detection.label for a in applied] == ["UPO"]

    def test_decoration_counts_in_perf(self, device):
        from repro.android.device import PerfOp
        attach_app(device)
        svc = AccessibilityService(device)
        ViewDecorator(svc).decorate([upo_detection()])
        assert device.perf.count(PerfOp.DECORATION) == 1


class TestAutoBypass:
    def test_bypass_clicks_upo(self, device):
        root = attach_app(device, fullscreen=False)
        clicks = []
        root.add_child(View(bounds=Rect(300, 36, 24, 24), clickable=True,
                            on_click=lambda: clicks.append("upo")))
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc)
        # Screen coords of the button center: (312, 36+12+24)= (312, 72).
        hit = deco.bypass([upo_detection(x=300, y=60, s=24)])
        assert hit is not None and clicks == ["upo"]

    def test_bypass_ignores_ago(self, device):
        attach_app(device)
        svc = AccessibilityService(device)
        deco = ViewDecorator(svc)
        ago = ScoredBox(rect=Rect(80, 250, 200, 60), label="AGO", score=0.9)
        assert deco.bypass([ago]) is None


class TestManifest:
    def test_darpa_manifest_has_no_internet(self):
        assert not DARPA_MANIFEST.declares_internet()

    def test_require_missing_permission_raises(self):
        with pytest.raises(ManifestViolation):
            DARPA_MANIFEST.require("android.permission.INTERNET")

    def test_require_present_permission_ok(self):
        DARPA_MANIFEST.require("android.permission.SYSTEM_ALERT_WINDOW")


class TestScreenshotPolicy:
    def test_startup_requires_consent(self):
        policy = ScreenshotPolicy()
        with pytest.raises(ConsentError):
            policy.check_startup()
        policy.give_consent()
        policy.check_startup()

    def test_internet_manifest_rejected_at_startup(self):
        bad = Manifest(permissions=frozenset({"android.permission.INTERNET"}))
        policy = ScreenshotPolicy(manifest=bad, consent_given=True)
        with pytest.raises(ManifestViolation):
            policy.check_startup()

    def test_capture_without_consent_raises(self, device):
        attach_app(device)
        svc = AccessibilityService(device)
        policy = ScreenshotPolicy()
        with pytest.raises(ConsentError):
            with policy.analyzed_screenshot(svc):
                pass

    def test_screenshot_rinsed_after_analysis(self, device):
        attach_app(device)
        svc = AccessibilityService(device)
        policy = ScreenshotPolicy(consent_given=True)
        with policy.analyzed_screenshot(svc) as shot:
            assert shot.pixels.shape == (640, 360, 3)
        assert shot.rinsed
        assert policy.outstanding == 0

    def test_rinse_happens_even_on_detector_crash(self, device):
        attach_app(device)
        svc = AccessibilityService(device)
        policy = ScreenshotPolicy(consent_given=True)
        captured = {}
        with pytest.raises(RuntimeError, match="detector exploded"):
            with policy.analyzed_screenshot(svc) as shot:
                captured["shot"] = shot
                raise RuntimeError("detector exploded")
        assert captured["shot"].rinsed
        assert policy.outstanding == 0

    def test_consent_returns_policy_text(self):
        policy = ScreenshotPolicy()
        text = policy.give_consent()
        assert "screenshot" in text.lower()
        assert "network" in text.lower() or "transmit" in text.lower()

    def test_failed_capture_counts_no_capture_and_no_rinse(self, device):
        # When takeScreenshot itself raises, no pixel buffer ever
        # existed: the ledger must not record a capture (or a phantom
        # rinse for it).
        from repro.android.faults import FaultPlan, FaultyDevice, \
            ScreenshotFailedError
        faulty = FaultyDevice(plan=FaultPlan(screenshot_failure_rate=1.0),
                              seed=0)
        root = View(bounds=Rect(0, 0, 360, 568))
        faulty.window_manager.attach_app_window(root, "com.demo")
        svc = AccessibilityService(faulty)
        policy = ScreenshotPolicy(consent_given=True)
        with pytest.raises(ScreenshotFailedError):
            with policy.analyzed_screenshot(svc):
                pass
        assert policy.captures == 0
        assert policy.rinses == 0
        assert policy.outstanding == 0


class TestServiceStartupPolicy:
    """DarpaService.start() runs the policy checks before anything else."""

    def make_service(self, device, policy):
        from repro.core import DarpaService

        class NullDetector:
            def detect_screen(self, screen_image, refine=True,
                              conf_threshold=None):
                return []

        return DarpaService(device, NullDetector(), policy=policy)

    def test_start_without_consent_raises(self, device):
        svc = self.make_service(device, ScreenshotPolicy())
        with pytest.raises(ConsentError):
            svc.start()
        assert not svc.running
        assert not svc.service.connected  # never registered on the bus

    def test_start_with_internet_manifest_raises(self, device):
        bad = Manifest(permissions=frozenset({"android.permission.INTERNET"}))
        svc = self.make_service(
            device, ScreenshotPolicy(manifest=bad, consent_given=True))
        with pytest.raises(ManifestViolation):
            svc.start()
        assert not svc.running

    def test_consent_then_start_succeeds(self, device):
        policy = ScreenshotPolicy()
        svc = self.make_service(device, policy)
        policy.give_consent()
        svc.start()
        assert svc.running and svc.service.connected

    def test_detector_crash_leaves_no_unrinsed_screenshots(self, device):
        root = View(bounds=Rect(0, 0, 360, 568))
        device.window_manager.attach_app_window(root, "com.demo")
        policy = ScreenshotPolicy(consent_given=True)

        from repro.core import DarpaConfig, DarpaService

        class ExplodingDetector:
            def detect_screen(self, screen_image, refine=True,
                              conf_threshold=None):
                raise RuntimeError("native inference aborted")

        svc = DarpaService(device, ExplodingDetector(), policy=policy,
                           config=DarpaConfig(fallback_to_heuristic=False))
        svc.start()
        from repro.android import AccessibilityEventType
        device.emit_event(
            AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED, "com.demo")
        device.clock.advance(1000)
        assert policy.captures == 1
        assert policy.outstanding == 0  # rinsed despite the crash
