"""Tests for the deterministic serving daemon (:mod:`repro.core.daemon`)."""

import filecmp
import json
import os

import pytest

from repro.android import SimulatedClock
from repro.android.faults import FaultPlan
from repro.bench.experiments import build_runtime_fleet
from repro.bench.parallel import run_darpa_over_fleet_parallel
from repro.core.daemon import (
    CoalescingCoordinator,
    DaemonConfig,
    DarpaDaemon,
    JournalError,
    LaneConfig,
    OUTCOMES,
    TokenBucket,
)

ARTIFACTS = ("trace.jsonl", "metrics.jsonl", "telemetry.json",
             "telemetry.prom")


@pytest.fixture(scope="module")
def fleet():
    return build_runtime_fleet(n_apps=5, seed=3)


def artifacts_equal(dir_a, dir_b, names=ARTIFACTS):
    return all(filecmp.cmp(os.path.join(dir_a, name),
                           os.path.join(dir_b, name), shallow=False)
               for name in names)


def in_capacity_config(**overrides):
    base = dict(inter_arrival_ms=120.0, workers=2, batch_max=3,
                admission_rate_per_s=50.0, admission_burst=16,
                batch_service_ms=250.0, shed_deadline_ms=0.0)
    base.update(overrides)
    return DaemonConfig(**base)


class TestTokenBucket:
    def test_starts_full_and_drains_per_token(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=3, clock=clock)
        assert bucket.tokens == 3.0
        assert bucket.try_take() and bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()

    def test_refills_from_simulated_time_only(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=2, clock=clock)
        bucket.try_take(), bucket.try_take()
        assert not bucket.try_take()       # no time passed, no refill
        clock.advance(100.0)               # 10/s -> exactly one token
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate_per_s=1000.0, burst=2, clock=clock)
        clock.advance(60_000.0)
        assert bucket.tokens == 2.0

    def test_integer_state_no_drift(self):
        # 3/s is not representable in binary floats; integer
        # micro-tokens keep 1000 x 1ms == 1 x 1000ms exactly.
        clock_a, clock_b = SimulatedClock(), SimulatedClock()
        a = TokenBucket(rate_per_s=3.0, burst=5, clock=clock_a)
        b = TokenBucket(rate_per_s=3.0, burst=5, clock=clock_b)
        for _ in range(5):
            a.try_take(), b.try_take()
        for _ in range(1000):
            clock_a.advance(1.0)
            a.tokens  # refill at every 1ms step
        clock_b.advance(1000.0)
        b.tokens   # one 1000ms refill
        assert a.tokens_micro == b.tokens_micro == 3 * TokenBucket.SCALE

    def test_rejects_bad_parameters(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0, clock=clock)


class TestDaemonConfig:
    def test_validates(self):
        with pytest.raises(ValueError):
            DaemonConfig(workers=0)
        with pytest.raises(ValueError):
            DaemonConfig(lanes=())
        with pytest.raises(ValueError):
            DaemonConfig(lanes=(LaneConfig("a"), LaneConfig("a")))
        with pytest.raises(ValueError):
            DaemonConfig(lanes=(LaneConfig("solo"),), background_every=2)
        with pytest.raises(ValueError):
            LaneConfig("x", capacity=0)

    def test_lane_routing_is_deterministic(self):
        config = DaemonConfig(background_every=3)
        lanes = [config.lane_of(i) for i in range(6)]
        assert lanes == ["interactive", "interactive", "background",
                        "interactive", "interactive", "background"]


class TestDaemonServing:
    def test_zero_fault_equals_sequential_any_config(self, fleet, tmp_path):
        seq = tmp_path / "seq"
        run_darpa_over_fleet_parallel(fleet, "oracle", n_workers=1,
                                      trace_dir=str(seq))
        for workers, batch_max in ((1, 1), (3, 4)):
            out = tmp_path / f"daemon-{workers}-{batch_max}"
            config = in_capacity_config(workers=workers, batch_max=batch_max,
                                        background_every=2)
            DarpaDaemon(fleet, "oracle", config=config,
                        out_dir=str(out)).run()
            assert artifacts_equal(str(seq), str(out)), (workers, batch_max)

    def test_fifo_within_lane(self, fleet, tmp_path):
        config = in_capacity_config(workers=1, batch_max=2,
                                    background_every=2)
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(tmp_path / "out")).run()
        by_lane: dict = {}
        for batch in report.batches:
            if batch.fault == "crash":
                continue
            by_lane.setdefault(batch.lane, []).extend(batch.indices)
        arrivals: dict = {}
        for entry in report.schedules:
            arrivals.setdefault(entry.lane, []).append(entry.index)
        for lane, served in by_lane.items():
            admitted = [i for i in arrivals[lane] if i in set(served)]
            assert served == admitted, f"lane {lane} broke FIFO"

    def test_bounded_lane_occupancy_and_typed_rejections(self, fleet,
                                                        tmp_path):
        config = DaemonConfig(
            inter_arrival_ms=5.0, workers=1, batch_max=1,
            admission_rate_per_s=1000.0, admission_burst=100,
            lanes=(LaneConfig("interactive", capacity=2),),
            batch_service_ms=500.0, shed_deadline_ms=0.0)
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(tmp_path / "out")).run()
        assert report.counters["shed_queue_full"] > 0
        for rejection in report.rejections:
            assert rejection.kind in ("rate_limited", "queue_full", "drained")
        # Capacity 2 + 1 in service: admitted backlog never exceeded it.
        assert report.counters["admitted"] <= 3 + report.counters[
            "batches_completed"]

    def test_rate_limit_rejections(self, fleet, tmp_path):
        config = in_capacity_config(inter_arrival_ms=1.0,
                                    admission_rate_per_s=10.0,
                                    admission_burst=1)
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(tmp_path / "out")).run()
        assert report.counters["shed_rate_limited"] > 0

    def test_outcome_trichotomy_under_overload(self, fleet, tmp_path):
        config = DaemonConfig(
            inter_arrival_ms=10.0, workers=1, batch_max=2,
            admission_rate_per_s=20.0, admission_burst=2,
            batch_service_ms=400.0, shed_deadline_ms=50.0)
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(tmp_path / "out")).run()
        c = report.counters
        assert c["shed"] > 0 and c["degraded"] > 0
        assert c["decorated"] + c["degraded"] + c["shed"] == c["offered"]
        assert set(report.outcomes.values()) <= set(OUTCOMES)
        assert len(report.outcomes) == c["offered"]

    def test_backpressure_surfaces_as_deferral(self, fleet, tmp_path):
        config = in_capacity_config(inter_arrival_ms=20.0, workers=1,
                                    batch_max=1, batch_service_ms=300.0)
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(tmp_path / "out")).run()
        assert report.counters["deferred_sessions"] > 0
        deferred = [e for e in report.schedules if e.deferred_ms > 0]
        assert deferred and all(e.outcome in OUTCOMES for e in deferred)

    def test_degraded_sessions_skip_the_cnn(self, fleet, tmp_path):
        config = DaemonConfig(
            inter_arrival_ms=10.0, workers=1, batch_max=1,
            admission_rate_per_s=1000.0, admission_burst=100,
            batch_service_ms=300.0, shed_deadline_ms=1.0)
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(tmp_path / "out")).run()
        degraded = [e.index for e in report.schedules
                    if e.outcome == "degraded"]
        assert degraded
        for index in degraded:
            counters = report.results[index].metrics["counters"]
            # No CNN inference ran; every analysis went through the
            # FraudDroid fallback.
            assert "darpa.stage.inference.count" not in counters
            assert counters["darpa.pipeline.fallback_detections"] \
                == counters["darpa.pipeline.screens_analyzed"]

    def test_graceful_drain_flushes_and_rejects(self, fleet, tmp_path):
        out = tmp_path / "out"
        config = in_capacity_config()
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(out)).run(drain_at_ms=150.0)
        assert report.drained_early
        assert report.counters["shed_drained"] > 0
        assert report.counters["completed"] == report.counters["admitted"]
        with open(out / "drain.json") as fp:
            manifest = json.load(fp)
        assert manifest["forced"] and manifest["queues_flushed"]
        assert manifest["completed"] == report.counters["completed"]

    def test_drain_manifest_written_on_normal_exit_too(self, fleet,
                                                       tmp_path):
        out = tmp_path / "out"
        DarpaDaemon(fleet, "oracle", config=in_capacity_config(),
                    out_dir=str(out)).run()
        with open(out / "drain.json") as fp:
            manifest = json.load(fp)
        assert not manifest["forced"]
        assert manifest["completed"] == len(list(range(5)))


class TestKillResume:
    def test_kill_then_resume_is_byte_identical(self, fleet, tmp_path):
        full, kr = tmp_path / "full", tmp_path / "kr"
        config = in_capacity_config()
        DarpaDaemon(fleet, "oracle", config=config, out_dir=str(full)).run()
        killed = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(kr)).run(max_batches=1)
        assert killed.killed and not killed.completed
        assert not (kr / "telemetry.json").exists()   # no premature merge
        resumed = DarpaDaemon(fleet, "oracle", config=config,
                              out_dir=str(kr)).run(resume=True)
        assert resumed.completed
        assert len(resumed.resumed_indices) >= 1
        assert artifacts_equal(str(full), str(kr),
                               names=ARTIFACTS + ("daemon.json",
                                                  "drain.json"))

    def test_resume_executes_each_session_exactly_once(self, fleet,
                                                       tmp_path):
        out = tmp_path / "out"
        config = in_capacity_config()
        DarpaDaemon(fleet, "oracle", config=config,
                    out_dir=str(out)).run(max_batches=1)
        DarpaDaemon(fleet, "oracle", config=config,
                    out_dir=str(out)).run(resume=True)
        with open(out / "journal.jsonl") as fp:
            lines = [json.loads(line) for line in fp if line.strip()]
        indices = [line["index"] for line in lines[1:]]
        assert sorted(indices) == list(range(5))
        assert len(indices) == len(set(indices)), "double-counted a session"

    def test_resume_refuses_foreign_journal(self, fleet, tmp_path):
        out = tmp_path / "out"
        DarpaDaemon(fleet, "oracle", config=in_capacity_config(),
                    out_dir=str(out)).run(max_batches=1)
        other = in_capacity_config(batch_max=2)
        with pytest.raises(JournalError):
            DarpaDaemon(fleet, "oracle", config=other,
                        out_dir=str(out)).run(resume=True)

    def test_resume_without_journal_fails(self, fleet, tmp_path):
        with pytest.raises(JournalError):
            DarpaDaemon(fleet, "oracle", config=in_capacity_config(),
                        out_dir=str(tmp_path / "void")).run(resume=True)


class TestWorkerFaults:
    def test_crash_reenqueues_without_double_counting(self, fleet,
                                                      tmp_path):
        base, fault = tmp_path / "base", tmp_path / "fault"
        config = in_capacity_config()
        plan = FaultPlan(seed=99, worker_crash_rate=0.5,
                         worker_stall_rate=0.3)
        DarpaDaemon(fleet, "oracle", config=config, out_dir=str(base)).run()
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(fault), fault_plan=plan).run()
        assert report.counters["worker_crashes"] >= 1
        assert report.counters["completed"] == 5
        assert report.counters["batches_formed"] \
            > report.counters["batches_completed"]
        # Crashed batches left no telemetry fingerprint.
        assert artifacts_equal(str(base), str(fault))
        # FIFO survived the head re-enqueue.
        served = [i for b in report.batches if b.fault != "crash"
                  for i in b.indices]
        assert served == sorted(served)

    def test_stall_delays_completion(self, fleet, tmp_path):
        config = in_capacity_config(workers=1, batch_max=5)
        plan = FaultPlan(seed=5, worker_stall_rate=1.0,
                         worker_stall_ms=7000.0)
        report = DarpaDaemon(fleet, "oracle", config=config,
                             out_dir=str(tmp_path / "out"),
                             fault_plan=plan).run()
        assert report.counters["worker_stalls"] >= 1
        stalled = [b for b in report.batches if b.fault == "stall"]
        assert stalled
        for batch in stalled:
            assert batch.finish_ms - batch.formed_ms \
                == config.batch_service_ms + batch.fault_delay_ms

    def test_crash_looping_plan_fails_loudly(self, fleet, tmp_path):
        config = in_capacity_config()
        plan = FaultPlan(seed=1, worker_crash_rate=1.0, worker_restart_ms=1.0)
        with pytest.raises(RuntimeError, match="runaway"):
            DarpaDaemon(fleet, "oracle", config=config,
                        out_dir=str(tmp_path / "out"),
                        fault_plan=plan).run()


class _CountingDetector:
    """Shared fake detector: batched answers must equal per-image ones."""

    def __init__(self):
        self.single_calls = 0
        self.batch_calls = 0
        self.batch_sizes = []

    @staticmethod
    def _answer(image, conf_threshold):
        from repro.geometry.nms import ScoredBox
        from repro.geometry.rect import Rect
        # Image-dependent but cheap: flag "UPO" when the screen is dark.
        mean = float(image.mean())
        if mean < 0.5:
            return [ScoredBox(rect=Rect(4, 4, 20, 12), label="UPO",
                              score=0.9)]
        return []

    def detect_screen(self, image, refine=True, conf_threshold=None):
        self.single_calls += 1
        return self._answer(image, conf_threshold)

    def detect_screens(self, images, refine=True, conf_threshold=None):
        self.batch_calls += 1
        self.batch_sizes.append(len(images))
        return [self._answer(image, conf_threshold) for image in images]


class TestCoalescing:
    def test_coordinator_folds_concurrent_requests(self):
        detector = _CountingDetector()
        coordinator = CoalescingCoordinator(detector)

        def make_job(n_calls, value):
            def job(proxy):
                out = []
                import numpy as np
                image = np.full((8, 8), value)
                for _ in range(n_calls):
                    out.append(proxy.detect_screen(image))
                return len(out)
            return job

        results = coordinator.run_batch(
            [make_job(3, 0.1), make_job(2, 0.9), make_job(3, 0.1)])
        assert results == [3, 2, 3]
        # Rounds: 3 sessions, then 3, then 2 (one finished early).
        assert coordinator.occupancies == [3, 3, 2]
        assert detector.batch_calls == 3
        assert detector.single_calls == 0

    def test_coordinator_propagates_session_errors(self):
        coordinator = CoalescingCoordinator(_CountingDetector())

        def bad_job(proxy):
            raise RuntimeError("session exploded")

        with pytest.raises(RuntimeError, match="session exploded"):
            coordinator.run_batch([bad_job])

    def test_coordinator_rejects_mixed_settings(self):
        coordinator = CoalescingCoordinator(_CountingDetector())
        import numpy as np
        image = np.zeros((4, 4))

        def job_with(conf):
            def job(proxy):
                return proxy.detect_screen(image, conf_threshold=conf)
            return job

        with pytest.raises(ValueError, match="mismatched"):
            coordinator.run_batch([job_with(0.3), job_with(0.7)])

    def test_daemon_coalesced_run_matches_solo(self, tmp_path):
        # Small fleet so the rendered (non-stub) screenshots stay cheap.
        sessions = build_runtime_fleet(n_apps=3, seed=11)
        config = DaemonConfig(
            inter_arrival_ms=0.0, workers=1, batch_max=3,
            admission_rate_per_s=1000.0, admission_burst=100,
            batch_service_ms=100.0, shed_deadline_ms=0.0)
        shared = _CountingDetector()
        coalesced = DarpaDaemon(sessions, shared, config=config,
                                trace=False).run()
        assert coalesced.coalesced_occupancies
        assert max(coalesced.coalesced_occupancies) > 1
        # Multi-session batches fold through detect_screens; only
        # singleton batches (first arrival) may call detect_screen.
        assert shared.batch_calls > 0

        solo_detector = _CountingDetector()
        solo = DarpaDaemon(sessions, solo_detector, config=config,
                           trace=False, coalesce=False).run()
        assert solo_detector.batch_calls == 0
        for index in range(3):
            a, b = coalesced.results[index], solo.results[index]
            assert a.screen_verdicts == b.screen_verdicts
            assert a.auis_flagged == b.auis_flagged
            assert a.metrics == b.metrics
