"""Tests for image filters and pseudo-text rendering."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.imaging import (
    Canvas,
    box_blur,
    draw_pseudo_text,
    gaussian_blur,
    gradient_magnitude,
    pseudo_text_width,
    to_grayscale,
)
from repro.imaging.color import BLACK, PALETTE, WHITE
from repro.imaging.filters import blur_region, resize


def checkerboard(h=32, w=32):
    img = np.indices((h, w)).sum(axis=0) % 2
    return np.repeat(img[:, :, None], 3, axis=2).astype(np.float32)


class TestGrayscale:
    def test_shape(self):
        assert to_grayscale(checkerboard()).shape == (32, 32)

    def test_white_maps_to_one(self):
        img = np.ones((4, 4, 3), dtype=np.float32)
        assert np.allclose(to_grayscale(img), 1.0)

    def test_passthrough_for_2d(self):
        img = np.full((4, 4), 0.5, dtype=np.float32)
        assert np.allclose(to_grayscale(img), 0.5)


class TestBlur:
    def test_gaussian_reduces_variance(self):
        img = checkerboard()
        blurred = gaussian_blur(img, sigma=2.0)
        assert blurred.var() < img.var()

    def test_gaussian_sigma_zero_noop_copy(self):
        img = checkerboard()
        out = gaussian_blur(img, 0.0)
        assert np.array_equal(out, img)
        out[0, 0] = 9.0
        assert img[0, 0, 0] != 9.0

    def test_box_blur_reduces_variance(self):
        img = checkerboard()
        assert box_blur(img, 5).var() < img.var()

    def test_blur_region_only_touches_rect(self):
        img = checkerboard(32, 32)
        out = blur_region(img, Rect(0, 0, 16, 32), sigma=3.0)
        # Right half untouched.
        assert np.array_equal(out[:, 20:], img[:, 20:])
        # Left half changed.
        assert not np.array_equal(out[:, :12], img[:, :12])

    def test_blur_region_offscreen_noop(self):
        img = checkerboard()
        out = blur_region(img, Rect(100, 100, 10, 10), sigma=3.0)
        assert np.array_equal(out, img)


class TestGradient:
    def test_edge_has_high_gradient(self):
        img = np.zeros((16, 16, 3), dtype=np.float32)
        img[:, 8:] = 1.0
        mag = gradient_magnitude(img)
        assert mag[:, 7:9].max() > mag[:, 0:4].max()

    def test_flat_image_zero_gradient(self):
        img = np.full((8, 8, 3), 0.5, dtype=np.float32)
        assert np.allclose(gradient_magnitude(img), 0.0, atol=1e-5)


class TestResize:
    def test_exact_output_shape(self):
        img = checkerboard(33, 47)
        out = resize(img, 96, 96)
        assert out.shape == (96, 96, 3)

    def test_downscale_shape(self):
        out = resize(checkerboard(64, 64), 16, 24)
        assert out.shape == (16, 24, 3)

    def test_grayscale_input(self):
        out = resize(np.ones((10, 10), dtype=np.float32), 5, 5)
        assert out.shape == (5, 5)
        assert np.allclose(out, 1.0)

    def test_values_stay_in_unit_range(self):
        out = resize(checkerboard(), 100, 100)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestPseudoText:
    def test_width_scales_with_length(self):
        assert pseudo_text_width("abcd", 10) > pseudo_text_width("ab", 10)

    def test_width_empty(self):
        assert pseudo_text_width("", 10) == 0.0

    def test_draw_returns_bounds(self):
        canvas = Canvas(200, 60, background=WHITE)
        bounds = draw_pseudo_text(canvas, "Subscribe", 10, 20, 14, BLACK)
        assert bounds.x == 10 and bounds.y == 20 and bounds.h == 14
        assert bounds.w == pytest.approx(pseudo_text_width("Subscribe", 14))

    def test_draw_marks_pixels(self):
        canvas = Canvas(200, 60, background=WHITE)
        draw_pseudo_text(canvas, "XX", 10, 20, 20, BLACK)
        region = canvas.pixels[20:40, 10:40]
        assert region.min() < 0.1  # some strokes painted

    def test_space_renders_empty(self):
        canvas = Canvas(100, 40, background=WHITE)
        draw_pseudo_text(canvas, " ", 10, 10, 20, BLACK)
        assert np.allclose(canvas.pixels, 1.0)

    def test_deterministic_glyphs(self):
        c1 = Canvas(100, 40, background=WHITE)
        c2 = Canvas(100, 40, background=WHITE)
        draw_pseudo_text(c1, "close", 5, 5, 16, BLACK)
        draw_pseudo_text(c2, "close", 5, 5, 16, BLACK)
        assert np.array_equal(c1.pixels, c2.pixels)

    def test_different_text_different_pixels(self):
        c1 = Canvas(100, 40, background=WHITE)
        c2 = Canvas(100, 40, background=WHITE)
        draw_pseudo_text(c1, "open", 5, 5, 16, BLACK)
        draw_pseudo_text(c2, "shut", 5, 5, 16, BLACK)
        assert not np.array_equal(c1.pixels, c2.pixels)

    def test_rejects_nonpositive_size(self):
        canvas = Canvas(10, 10)
        with pytest.raises(ValueError):
            draw_pseudo_text(canvas, "x", 0, 0, 0, BLACK)
