"""Tests for the raster canvas drawing primitives."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.imaging import Canvas, Color
from repro.imaging.color import BLACK, PALETTE, WHITE


@pytest.fixture
def canvas():
    return Canvas(100, 80, background=WHITE)


class TestConstruction:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Canvas(0, 10)

    def test_shape_is_hwc(self, canvas):
        assert canvas.pixels.shape == (80, 100, 3)

    def test_background_applied(self, canvas):
        assert np.allclose(canvas.pixels, 1.0)

    def test_default_background_black(self):
        assert np.allclose(Canvas(4, 4).pixels, 0.0)

    def test_from_array_validates_shape(self):
        with pytest.raises(ValueError):
            Canvas.from_array(np.zeros((4, 4)))

    def test_from_array_clips(self):
        arr = np.full((4, 4, 3), 2.0)
        c = Canvas.from_array(arr)
        assert c.pixels.max() == 1.0

    def test_to_array_is_copy(self, canvas):
        arr = canvas.to_array()
        arr[:] = 0.0
        assert np.allclose(canvas.pixels, 1.0)

    def test_copy_independent(self, canvas):
        clone = canvas.copy()
        clone.fill(BLACK)
        assert np.allclose(canvas.pixels, 1.0)


class TestFillRect:
    def test_opaque_fill(self, canvas):
        canvas.fill_rect(Rect(10, 10, 20, 20), BLACK)
        assert np.allclose(canvas.pixels[15, 15], 0.0)
        assert np.allclose(canvas.pixels[5, 5], 1.0)

    def test_alpha_blend(self, canvas):
        canvas.fill_rect(Rect(0, 0, 100, 80), BLACK, alpha=0.5)
        assert np.allclose(canvas.pixels[40, 50], 0.5, atol=1e-6)

    def test_zero_alpha_noop(self, canvas):
        canvas.fill_rect(Rect(0, 0, 100, 80), BLACK, alpha=0.0)
        assert np.allclose(canvas.pixels, 1.0)

    def test_offscreen_rect_ignored(self, canvas):
        canvas.fill_rect(Rect(500, 500, 10, 10), BLACK)
        assert np.allclose(canvas.pixels, 1.0)

    def test_partially_offscreen_clipped(self, canvas):
        canvas.fill_rect(Rect(-10, -10, 20, 20), BLACK)
        assert np.allclose(canvas.pixels[5, 5], 0.0)
        assert np.allclose(canvas.pixels[15, 15], 1.0)


class TestStrokeRect:
    def test_stroke_leaves_interior(self, canvas):
        canvas.stroke_rect(Rect(10, 10, 40, 40), BLACK, thickness=2)
        assert np.allclose(canvas.pixels[11, 30], 0.0)  # top edge
        assert np.allclose(canvas.pixels[30, 30], 1.0)  # interior


class TestRoundedRect:
    def test_corners_unpainted(self, canvas):
        canvas.fill_rounded_rect(Rect(10, 10, 40, 40), BLACK, radius=10)
        # Very corner pixel lies outside the rounded corner.
        assert canvas.pixels[10, 10].mean() > 0.9
        # Center is painted.
        assert np.allclose(canvas.pixels[30, 30], 0.0)

    def test_zero_radius_is_full_rect(self, canvas):
        canvas.fill_rounded_rect(Rect(10, 10, 40, 40), BLACK, radius=0)
        assert np.allclose(canvas.pixels[10, 10], 0.0, atol=0.05)

    def test_radius_clamped_to_half_min_side(self, canvas):
        # Radius larger than half the side must not raise.
        canvas.fill_rounded_rect(Rect(10, 10, 20, 40), BLACK, radius=100)
        assert np.allclose(canvas.pixels[30, 20], 0.0)


class TestCircle:
    def test_center_painted_edge_not(self, canvas):
        canvas.fill_circle(50, 40, 10, BLACK)
        assert np.allclose(canvas.pixels[40, 50], 0.0)
        assert canvas.pixels[40, 65].mean() > 0.9

    def test_antialiased_edge(self, canvas):
        canvas.fill_circle(50, 40, 10, BLACK)
        edge = canvas.pixels[40, 59].mean()
        assert 0.0 < edge < 1.0  # partially covered pixel


class TestLinesAndCross:
    def test_line_painted(self, canvas):
        canvas.draw_line(0, 0, 99, 79, BLACK, thickness=3)
        assert canvas.pixels[40, 50].mean() < 0.2

    def test_cross_covers_diagonals(self, canvas):
        canvas.draw_cross(50, 40, 20, BLACK, thickness=2)
        assert canvas.pixels[40, 50].mean() < 0.5  # center
        assert canvas.pixels[33, 43].mean() < 0.6  # upper-left arm


class TestGradient:
    def test_vertical_gradient_monotonic(self, canvas):
        canvas.fill_vertical_gradient(Rect(0, 0, 100, 80), BLACK, WHITE)
        top = canvas.pixels[2, 50].mean()
        mid = canvas.pixels[40, 50].mean()
        bot = canvas.pixels[78, 50].mean()
        assert top < mid < bot


class TestNoiseAndSampling:
    def test_noise_changes_pixels_but_stays_clipped(self, canvas):
        rng = np.random.default_rng(7)
        canvas.add_noise(rng, scale=0.05)
        assert not np.allclose(canvas.pixels, 1.0)
        assert canvas.pixels.max() <= 1.0 and canvas.pixels.min() >= 0.0

    def test_sample_mean(self, canvas):
        canvas.fill_rect(Rect(0, 0, 50, 80), BLACK)
        mean = canvas.sample_mean(Rect(0, 0, 50, 80))
        assert mean.r < 0.01

    def test_sample_mean_offscreen_is_black(self, canvas):
        mean = canvas.sample_mean(Rect(1000, 1000, 5, 5))
        assert mean == Color(0, 0, 0)
