"""Tests for color, luminance and contrast math."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.imaging import Color, contrast_ratio, mix, relative_luminance, PALETTE
from repro.imaging.color import AGO_ACCENTS, BLACK, UPO_MUTED, WHITE

channel = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
colors = st.builds(Color, channel, channel, channel)


class TestColor:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Color(1.2, 0, 0)
        with pytest.raises(ValueError):
            Color(0, -0.1, 0)

    def test_from_hex(self):
        c = Color.from_hex("#ff0080")
        assert c.r == pytest.approx(1.0)
        assert c.g == pytest.approx(0.0)
        assert c.b == pytest.approx(128 / 255)

    def test_from_hex_rejects_short(self):
        with pytest.raises(ValueError):
            Color.from_hex("#abc")

    def test_array_roundtrip(self):
        c = Color(0.1, 0.5, 0.9)
        assert Color.from_array(c.as_array()) == pytest.approx_or_eq if False else True
        back = Color.from_array(c.as_array())
        assert back.r == pytest.approx(c.r, abs=1e-6)
        assert back.b == pytest.approx(c.b, abs=1e-6)

    def test_from_array_clips(self):
        c = Color.from_array(np.array([1.5, -0.3, 0.5]))
        assert c.r == 1.0 and c.g == 0.0

    def test_lightened_darkened(self):
        gray = Color(0.5, 0.5, 0.5)
        assert gray.lightened(1.0) == WHITE
        assert gray.darkened(1.0) == BLACK


class TestLuminance:
    def test_black_is_zero(self):
        assert relative_luminance(BLACK) == pytest.approx(0.0)

    def test_white_is_one(self):
        assert relative_luminance(WHITE) == pytest.approx(1.0)

    def test_green_brighter_than_blue(self):
        green = Color(0, 1, 0)
        blue = Color(0, 0, 1)
        assert relative_luminance(green) > relative_luminance(blue)

    @given(colors)
    def test_bounded(self, c):
        assert 0.0 <= relative_luminance(c) <= 1.0 + 1e-9


class TestContrast:
    def test_black_white_is_21(self):
        assert contrast_ratio(BLACK, WHITE) == pytest.approx(21.0)

    def test_self_contrast_is_one(self):
        c = PALETTE["blue"]
        assert contrast_ratio(c, c) == pytest.approx(1.0)

    @given(colors, colors)
    def test_symmetric_and_bounded(self, a, b):
        r = contrast_ratio(a, b)
        assert r == pytest.approx(contrast_ratio(b, a))
        assert 1.0 - 1e-9 <= r <= 21.0 + 1e-9

    def test_ago_accents_pop_against_white(self):
        """The generator's AGO accents must be genuinely salient."""
        for name in AGO_ACCENTS:
            assert contrast_ratio(PALETTE[name], WHITE) > 1.7, name

    def test_upo_muted_blend_into_light_backgrounds(self):
        for name in UPO_MUTED:
            if name == "dark_gray":
                continue  # dark_gray is for dark scrims, not light cards
            assert contrast_ratio(PALETTE[name], PALETTE["near_white"]) < 2.5, name


class TestMix:
    def test_endpoints(self):
        assert mix(BLACK, WHITE, 0.0) == BLACK
        assert mix(BLACK, WHITE, 1.0) == WHITE

    def test_midpoint(self):
        m = mix(BLACK, WHITE, 0.5)
        assert m.r == pytest.approx(0.5)

    def test_clamps_t(self):
        assert mix(BLACK, WHITE, 2.0) == WHITE
        assert mix(BLACK, WHITE, -1.0) == BLACK
