"""Tests for quota-driven sample specs."""

import pytest

from repro.datagen import AuiType, SampleSpec, TABLE1_QUOTAS, make_sample_specs
from repro.datagen.specs import (
    FRACTION_AGO_CENTRAL,
    FRACTION_UPO_CORNER,
    TOTAL_AGO_BOXES,
    TOTAL_AUI_SAMPLES,
    TOTAL_UPO_BOXES,
)


@pytest.fixture(scope="module")
def specs():
    return make_sample_specs(seed=0)


class TestQuotas:
    def test_total_sample_count(self, specs):
        assert len(specs) == TOTAL_AUI_SAMPLES == 1072

    def test_table1_type_quotas_exact(self, specs):
        for aui_type, quota in TABLE1_QUOTAS.items():
            assert sum(1 for s in specs if s.aui_type is aui_type) == quota

    def test_ago_box_total_exact(self, specs):
        assert sum(1 for s in specs if s.has_ago) == TOTAL_AGO_BOXES == 744

    def test_upo_box_total_exact(self, specs):
        assert sum(s.n_upo for s in specs) == TOTAL_UPO_BOXES == 1102

    def test_every_sample_annotatable(self, specs):
        for s in specs:
            assert s.has_ago or s.n_upo > 0

    def test_layout_fractions(self, specs):
        with_ago = [s for s in specs if s.has_ago]
        central = sum(s.ago_central for s in with_ago) / len(with_ago)
        assert central == pytest.approx(FRACTION_AGO_CENTRAL, abs=0.002)
        with_upo = [s for s in specs if s.n_upo > 0]
        corner = sum(s.upo_corner for s in with_upo) / len(with_upo)
        assert corner == pytest.approx(FRACTION_UPO_CORNER, abs=0.002)

    def test_deterministic_per_seed(self):
        a = make_sample_specs(seed=3)
        b = make_sample_specs(seed=3)
        assert a == b

    def test_different_seed_shuffles(self):
        a = make_sample_specs(seed=0)
        b = make_sample_specs(seed=1)
        assert a != b

    def test_indices_sequential(self, specs):
        assert [s.index for s in specs] == list(range(len(specs)))

    def test_hard_upo_only_when_upo_present(self, specs):
        for s in specs:
            if s.hard_upo:
                assert s.n_upo > 0


class TestSampleSpecValidation:
    def test_rejects_bad_upo_count(self):
        with pytest.raises(ValueError):
            SampleSpec(index=0, aui_type=AuiType.ADVERTISEMENT, has_ago=True,
                       n_upo=3, ago_central=True, upo_corner=True,
                       fullscreen=False, first_party=False, hard_upo=False,
                       style_seed=1)

    def test_rejects_unannotatable(self):
        with pytest.raises(ValueError):
            SampleSpec(index=0, aui_type=AuiType.ADVERTISEMENT, has_ago=False,
                       n_upo=0, ago_central=False, upo_corner=False,
                       fullscreen=False, first_party=False, hard_upo=False,
                       style_seed=1)
