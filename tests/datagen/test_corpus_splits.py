"""Tests for corpus assembly, Table II splitting, COCO export, masking."""

import numpy as np
import pytest

from repro.android.resources import ResourceIdPolicy
from repro.datagen import (
    AuiType,
    TABLE1_QUOTAS,
    build_app_dataset,
    build_corpus,
    mask_option_texts,
    split_corpus,
    to_coco,
)
from repro.datagen.corpus import render_state
from repro.datagen.splits import SplitInfeasibleError, split_summary
from repro.geometry import Rect


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(seed=0, n_negatives=60)


@pytest.fixture(scope="module")
def splits(corpus):
    return split_corpus(corpus, seed=0)


class TestAppDataset:
    def test_632_apps(self):
        apps = build_app_dataset(seed=0)
        assert len(apps) == 632

    def test_unique_packages(self):
        apps = build_app_dataset(seed=0)
        assert len({a.package for a in apps}) == len(apps)

    def test_policy_mix_dominated_by_obfuscation(self):
        apps = build_app_dataset(seed=0)
        readable = sum(a.id_policy is ResourceIdPolicy.READABLE for a in apps)
        assert readable / len(apps) < 0.3

    def test_deterministic(self):
        assert build_app_dataset(seed=5) == build_app_dataset(seed=5)


class TestCorpus:
    def test_type_distribution_matches_table1(self, corpus):
        assert corpus.type_distribution() == TABLE1_QUOTAS

    def test_box_totals(self, corpus):
        assert corpus.box_totals() == (744, 1102)

    def test_layout_statistics_near_paper(self, corpus):
        stats = corpus.layout_statistics()
        assert stats["ago_central"] == pytest.approx(0.946, abs=0.002)
        assert stats["upo_corner"] == pytest.approx(0.731, abs=0.002)
        assert stats["first_party"] == pytest.approx(0.351, abs=0.002)

    def test_source_mix(self, corpus):
        monkey = sum(1 for s in corpus.samples if s.source == "monkey")
        assert monkey / len(corpus.samples) == pytest.approx(7884 / 8855, abs=0.01)

    def test_negatives_include_benign_close(self, corpus):
        benign = [n for n in corpus.negatives if "benign" in n.name]
        assert len(benign) == 20  # every third of 60

    def test_samples_lazy_then_cached(self, corpus):
        sample = corpus.samples[0]
        assert sample._screen is None or sample._screen is not None  # no crash
        first = sample.screen
        assert sample.screen is first


class TestSplits:
    def test_split_counts_match_table2(self, splits):
        assert split_summary(splits) == {
            "train": (642, 453, 657),
            "val": (215, 150, 223),
            "test": (215, 141, 222),
        }

    def test_splits_are_a_partition(self, corpus, splits):
        seen = [s.spec.index for part in splits.values() for s in part]
        assert sorted(seen) == [s.spec.index for s in corpus.samples]

    def test_different_seeds_give_different_partitions(self, corpus):
        a = split_corpus(corpus, seed=0)
        b = split_corpus(corpus, seed=1)
        ids_a = [s.spec.index for s in a["test"]]
        ids_b = [s.spec.index for s in b["test"]]
        assert ids_a != ids_b

    def test_wrong_corpus_size_rejected(self, corpus):
        import dataclasses
        small = dataclasses.replace(corpus, samples=corpus.samples[:100])
        with pytest.raises(SplitInfeasibleError):
            split_corpus(small)


class TestCocoExport:
    def test_schema_and_counts(self, splits):
        part = splits["test"][:20]
        coco = to_coco(part)
        assert {c["name"] for c in coco["categories"]} == {"AGO", "UPO"}
        assert len(coco["images"]) == 20
        expected_boxes = sum(
            int(s.spec.has_ago) + s.spec.n_upo for s in part)
        assert len(coco["annotations"]) == expected_boxes

    def test_bbox_is_xywh_with_positive_area(self, splits):
        coco = to_coco(splits["val"][:10])
        for ann in coco["annotations"]:
            x, y, w, h = ann["bbox"]
            assert w > 0 and h > 0
            assert ann["area"] == pytest.approx(w * h)

    def test_image_ids_referenced(self, splits):
        coco = to_coco(splits["val"][:10])
        image_ids = {img["id"] for img in coco["images"]}
        assert all(a["image_id"] in image_ids for a in coco["annotations"])


class TestMasking:
    def test_masks_only_option_regions(self, corpus):
        sample = next(s for s in corpus.samples if s.spec.has_ago)
        img, labels = render_state(sample.screen)
        masked = mask_option_texts(img, labels)
        ago = dict(labels)["AGO"]
        y0, y1 = int(ago.top) + 4, int(ago.bottom) - 4
        x0, x1 = int(ago.left) + 4, int(ago.right) - 4
        assert not np.array_equal(masked[y0:y1, x0:x1], img[y0:y1, x0:x1])
        # A far-away corner is untouched.
        assert np.array_equal(masked[:10, :10], img[:10, :10])

    def test_mask_reduces_interior_detail(self, corpus):
        sample = next(s for s in corpus.samples if s.spec.has_ago)
        img, labels = render_state(sample.screen)
        masked = mask_option_texts(img, labels)
        ago = dict(labels)["AGO"]
        y0, y1 = int(ago.top) + 6, int(ago.bottom) - 6
        x0, x1 = int(ago.left) + 6, int(ago.right) - 6
        assert masked[y0:y1, x0:x1].std() < img[y0:y1, x0:x1].std() + 1e-6

    def test_rejects_bad_shrink(self):
        with pytest.raises(ValueError):
            mask_option_texts(np.zeros((10, 10, 3)), [], shrink=0.7)
