"""Tests for the AUI and non-AUI screen templates."""

import numpy as np
import pytest

from repro.android import SemanticRole
from repro.android.resources import ResourceIdPolicy
from repro.datagen import AuiType, build_aui_screen, build_non_aui_screen
from repro.datagen.corpus import render_state
from repro.datagen.specs import SampleSpec
from repro.geometry import Rect
from repro.imaging.color import Color, contrast_ratio


def spec_for(aui_type, *, has_ago=True, n_upo=1, central=True, corner=True,
             fullscreen=False, hard=False, seed=1234):
    return SampleSpec(
        index=0, aui_type=aui_type, has_ago=has_ago, n_upo=n_upo,
        ago_central=central, upo_corner=corner, fullscreen=fullscreen,
        first_party=False, hard_upo=hard, style_seed=seed,
    )


ALL_TYPES = list(AuiType)


class TestAuiTemplates:
    @pytest.mark.parametrize("aui_type", ALL_TYPES)
    def test_every_type_builds_and_labels(self, aui_type):
        state = build_aui_screen(spec_for(aui_type))
        assert state.is_aui
        roles = [r for r, _ in state.label_boxes]
        assert roles.count("AGO") == 1
        assert roles.count("UPO") == 1

    @pytest.mark.parametrize("aui_type", ALL_TYPES)
    def test_label_boxes_match_view_roles(self, aui_type):
        state = build_aui_screen(spec_for(aui_type, seed=77))
        ago_views = state.root.find_by_role(SemanticRole.AGO)
        upo_views = state.root.find_by_role(SemanticRole.UPO)
        assert len(ago_views) == 1 and len(upo_views) == 1
        assert state.boxes_of("AGO") == [ago_views[0].bounds]
        assert state.boxes_of("UPO") == [upo_views[0].bounds]

    def test_no_ago_spec_annotates_none(self):
        state = build_aui_screen(spec_for(AuiType.ADVERTISEMENT, has_ago=False))
        assert state.boxes_of("AGO") == []
        assert state.root.find_by_role(SemanticRole.AGO) == []
        assert state.root.clickable  # whole surface acts as the AGO

    def test_two_upos(self):
        state = build_aui_screen(spec_for(AuiType.SALES_PROMOTION, n_upo=2))
        assert len(state.boxes_of("UPO")) == 2

    def test_asymmetry_ago_much_larger_than_upo(self):
        for seed in (1, 2, 3, 4, 5):
            state = build_aui_screen(spec_for(AuiType.ADVERTISEMENT, seed=seed))
            ago = state.boxes_of("AGO")[0]
            upo = state.boxes_of("UPO")[0]
            assert ago.area > 4 * upo.area

    def test_central_ago_near_center(self):
        for seed in range(5):
            state = build_aui_screen(
                spec_for(AuiType.SALES_PROMOTION, central=True, seed=seed))
            cx, cy = state.boxes_of("AGO")[0].center
            assert 100 < cx < 260
            assert 150 < cy < 420

    def test_corner_upo_near_edge(self):
        for seed in range(8):
            state = build_aui_screen(
                spec_for(AuiType.ADVERTISEMENT, corner=True, seed=seed))
            rect = state.boxes_of("UPO")[0]
            cx, cy = rect.center
            near_x = cx < 80 or cx > 280
            near_y = cy < 70 or cy > 480
            assert near_x or near_y, f"seed {seed}: UPO at {rect.center}"

    def test_options_do_not_overlap(self):
        for seed in range(10):
            state = build_aui_screen(
                spec_for(AuiType.LUCKY_MONEY, n_upo=2, seed=seed))
            boxes = [r for _, r in state.label_boxes]
            for i, a in enumerate(boxes):
                for b in boxes[i + 1:]:
                    assert a.intersection(b).is_empty()

    def test_deterministic_for_same_spec(self):
        s = spec_for(AuiType.APP_UPGRADE, seed=99)
        a = build_aui_screen(s)
        b = build_aui_screen(s)
        assert a.label_boxes == b.label_boxes

    def test_obfuscated_policy_hides_readable_ids(self):
        state = build_aui_screen(
            spec_for(AuiType.ADVERTISEMENT, seed=5),
            id_policy=ResourceIdPolicy.OBFUSCATED,
        )
        assert state.root.find_by_resource_entry("close") == []
        assert state.root.find_by_resource_entry("btn_action") == []

    def test_readable_policy_keeps_ids(self):
        state = build_aui_screen(
            spec_for(AuiType.ADVERTISEMENT, seed=5),
            id_policy=ResourceIdPolicy.READABLE,
        )
        upo_views = state.root.find_by_role(SemanticRole.UPO)
        assert upo_views[0].resource_id is not None
        entry = upo_views[0].resource_id.entry
        assert any(k in entry for k in ("close", "skip", "cancel"))


class TestRenderedAsymmetry:
    """Visual (pixel-level) properties that the CV model relies on."""

    def test_ago_is_salient_upo_is_not(self):
        state = build_aui_screen(spec_for(AuiType.SALES_PROMOTION, seed=11))
        img, labels = render_state(state)
        by_role = dict((r, rect) for r, rect in labels)
        ago, upo = by_role["AGO"], by_role["UPO"]

        def region_mean(rect):
            y0, y1 = int(rect.top), int(rect.bottom)
            x0, x1 = int(rect.left), int(rect.right)
            return Color.from_array(img[y0:y1, x0:x1].reshape(-1, 3).mean(axis=0))

        def surround_mean(rect):
            outer = rect.inflated(22)
            return Color.from_array(img[
                max(0, int(outer.top)):int(outer.bottom),
                max(0, int(outer.left)):int(outer.right)].reshape(-1, 3).mean(axis=0))

        # Salience combines contrast with footprint: a small close
        # button may sit on a dark scrim (locally contrasty) yet still
        # be far less salient than the huge accent-colored AGO.
        ago_salience = contrast_ratio(region_mean(ago), surround_mean(ago)) * np.sqrt(ago.area)
        upo_salience = contrast_ratio(region_mean(upo), surround_mean(upo)) * np.sqrt(upo.area)
        assert ago_salience > upo_salience

    def test_hard_upo_is_fainter_than_normal(self):
        def upo_energy(hard):
            state = build_aui_screen(
                spec_for(AuiType.ADVERTISEMENT, hard=hard, seed=21))
            img, labels = render_state(state)
            rect = dict(labels)["UPO"]
            y0, y1 = int(rect.top), int(rect.bottom)
            x0, x1 = int(rect.left), int(rect.right)
            region = img[y0:y1, x0:x1]
            return float(region.std())

        assert upo_energy(hard=True) < upo_energy(hard=False) + 0.05


class TestNonAuiScreens:
    def test_plain_screen_has_no_labels(self):
        rng = np.random.default_rng(3)
        state = build_non_aui_screen(rng)
        assert not state.is_aui
        assert state.label_boxes == []

    def test_benign_close_has_close_but_no_ago(self):
        rng = np.random.default_rng(3)
        state = build_non_aui_screen(rng, benign_close=True)
        closes = state.root.find_by_role(SemanticRole.BENIGN_CLOSE)
        assert len(closes) == 1
        assert state.root.find_by_role(SemanticRole.AGO) == []
        assert not state.is_aui

    def test_renderable(self):
        rng = np.random.default_rng(4)
        state = build_non_aui_screen(rng, benign_close=True)
        img, labels = render_state(state)
        assert img.shape == (640, 360, 3)
        assert labels == []
