"""Tests for the dataset release exporter."""

import json

import numpy as np
import pytest

from repro.datagen import build_corpus
from repro.datagen.export import export_dataset, read_ppm, write_ppm


@pytest.fixture(scope="module")
def samples():
    return build_corpus(seed=0, n_negatives=0).samples[:6]


class TestPpmRoundtrip:
    def test_write_read_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        img = rng.random((20, 30, 3)).astype(np.float32)
        path = tmp_path / "x.ppm"
        write_ppm(path, img)
        back = read_ppm(path)
        assert back.shape == (20, 30, 3)
        assert np.abs(back - img).max() < 1 / 255 + 1e-6

    def test_read_rejects_non_ppm(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ValueError):
            read_ppm(path)

    def test_values_clipped(self, tmp_path):
        img = np.full((4, 4, 3), 2.0, dtype=np.float32)
        path = tmp_path / "c.ppm"
        write_ppm(path, img)
        assert read_ppm(path).max() <= 1.0


class TestExportDataset:
    def test_release_layout(self, tmp_path, samples):
        out = tmp_path / "release"
        counts = export_dataset(samples, out)
        assert counts["images"] == len(samples)
        ppms = sorted((out / "images").glob("*.ppm"))
        assert len(ppms) == len(samples)
        coco = json.loads((out / "annotations.json").read_text())
        assert len(coco["images"]) == len(samples)
        assert all(img["file_name"].endswith(".ppm")
                   for img in coco["images"])
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["images"] == len(samples)
        assert set(manifest["classes"].values()) == {"AGO", "UPO"}

    def test_limit(self, tmp_path, samples):
        counts = export_dataset(samples, tmp_path / "lim", limit=3)
        assert counts["images"] == 3

    def test_masked_export_differs(self, tmp_path, samples):
        export_dataset(samples[:2], tmp_path / "plain")
        export_dataset(samples[:2], tmp_path / "masked", masked=True)
        a = read_ppm(next((tmp_path / "plain" / "images").glob("*.ppm")))
        b = read_ppm(next((tmp_path / "masked" / "images").glob("*.ppm")))
        assert not np.array_equal(a, b)

    def test_images_loadable_and_plausible(self, tmp_path, samples):
        out = tmp_path / "rel"
        export_dataset(samples, out, limit=2)
        for path in (out / "images").glob("*.ppm"):
            img = read_ppm(path)
            assert img.shape == (640, 360, 3)
            assert 0.05 < img.mean() < 0.95  # not blank, not saturated
