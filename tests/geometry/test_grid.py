"""Tests for the detector grid encode/decode roundtrip."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import GridSpec, Rect, iou


@pytest.fixture
def grid():
    return GridSpec(image_w=96, image_h=96, cells_x=8, cells_y=8)


class TestGridSpec:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            GridSpec(0, 96, 8, 8)
        with pytest.raises(ValueError):
            GridSpec(96, 96, 0, 8)

    def test_cell_dimensions(self, grid):
        assert grid.cell_w == 12.0
        assert grid.cell_h == 12.0

    def test_cell_of_interior_point(self, grid):
        assert grid.cell_of(13, 25) == (1, 2)

    def test_cell_of_edge_point_clamps(self, grid):
        assert grid.cell_of(96, 96) == (7, 7)

    def test_cell_of_origin(self, grid):
        assert grid.cell_of(0, 0) == (0, 0)

    def test_encode_targets_in_range(self, grid):
        rect = Rect(30, 30, 20, 16)
        col, row, t = grid.encode(rect)
        assert 0 <= col < 8 and 0 <= row < 8
        assert 0.0 <= t[0] < 1.0 and 0.0 <= t[1] < 1.0
        assert 0.0 <= t[2] <= 1.0 and 0.0 <= t[3] <= 1.0

    def test_roundtrip_exact(self, grid):
        rect = Rect(30, 30, 24, 16)
        col, row, t = grid.encode(rect)
        back = grid.decode(col, row, t)
        assert iou(rect, back) > 0.999

    @given(
        x=st.floats(0, 80, allow_nan=False),
        y=st.floats(0, 80, allow_nan=False),
        w=st.floats(4, 40, allow_nan=False),
        h=st.floats(4, 40, allow_nan=False),
    )
    def test_roundtrip_property(self, x, y, w, h):
        grid = GridSpec(96, 96, 8, 8)
        rect = Rect(x, y, min(w, 96 - x), min(h, 96 - y))
        if rect.is_empty():
            return
        col, row, t = grid.encode(rect)
        back = grid.decode(col, row, t)
        assert iou(rect, back) > 0.99

    def test_decode_clamps_negative_size(self, grid):
        rect = grid.decode(2, 2, np.array([0.5, 0.5, -0.1, 0.2]))
        assert rect.w == 0.0
        assert rect.h > 0

    def test_scale_to_screen_space(self, grid):
        rect = Rect(0, 0, 48, 48)
        scaled = grid.scale_to(rect, 360, 640)
        assert scaled == Rect(0, 0, 180, 320)

    def test_nonsquare_grid(self):
        grid = GridSpec(image_w=90, image_h=160, cells_x=9, cells_y=16)
        rect = Rect(42, 100, 18, 22)
        col, row, t = grid.encode(rect)
        assert iou(grid.decode(col, row, t), rect) > 0.99
