"""Unit and property tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Offset, Rect

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)
rects = st.builds(Rect, coords, coords, sizes, sizes)


class TestConstruction:
    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 5, -1)

    def test_from_corners_unordered(self):
        r = Rect.from_corners(10, 20, 2, 4)
        assert r == Rect(2, 4, 8, 16)

    def test_from_center(self):
        r = Rect.from_center(50, 50, 20, 10)
        assert r == Rect(40, 45, 20, 10)
        assert r.center == (50, 50)

    def test_zero_area_allowed(self):
        assert Rect(1, 2, 0, 0).is_empty()


class TestDerived:
    def test_edges(self):
        r = Rect(2, 3, 10, 20)
        assert (r.left, r.top, r.right, r.bottom) == (2, 3, 12, 23)

    def test_area(self):
        assert Rect(0, 0, 4, 5).area == 20

    def test_as_xyxy_roundtrip(self):
        r = Rect(1, 2, 3, 4)
        assert Rect.from_corners(*r.as_xyxy()) == r

    def test_iter_yields_xywh(self):
        assert tuple(Rect(1, 2, 3, 4)) == (1, 2, 3, 4)

    def test_coco_format_is_xywh(self):
        assert Rect(5, 6, 7, 8).as_coco() == (5, 6, 7, 8)


class TestPredicates:
    def test_contains_point_interior(self):
        assert Rect(0, 0, 10, 10).contains_point(5, 5)

    def test_contains_point_edges_inclusive(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert r.contains_point(10, 10)

    def test_contains_point_outside(self):
        assert not Rect(0, 0, 10, 10).contains_point(10.5, 5)

    def test_contains_rect(self):
        outer = Rect(0, 0, 100, 100)
        assert outer.contains_rect(Rect(10, 10, 50, 50))
        assert not Rect(10, 10, 50, 50).contains_rect(outer)

    def test_intersects_disjoint(self):
        assert not Rect(0, 0, 5, 5).intersects(Rect(10, 10, 5, 5))

    def test_touching_rects_do_not_intersect(self):
        # Sharing only an edge has zero overlap area.
        assert not Rect(0, 0, 5, 5).intersects(Rect(5, 0, 5, 5))


class TestAlgebra:
    def test_intersection_partial_overlap(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 10, 10)
        assert a.intersection(b) == Rect(5, 5, 5, 5)

    def test_intersection_disjoint_is_empty(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(10, 10, 2, 2)).is_empty()

    def test_union_bounds(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(10, 10, 2, 2)
        assert a.union_bounds(b) == Rect(0, 0, 12, 12)

    def test_union_with_empty_is_identity(self):
        a = Rect(3, 4, 5, 6)
        assert a.union_bounds(Rect(0, 0, 0, 0)) == a

    @given(rects, rects)
    def test_intersection_commutative(self, a, b):
        ia, ib = a.intersection(b), b.intersection(a)
        assert math.isclose(ia.area, ib.area, rel_tol=1e-9, abs_tol=1e-9)

    @given(rects, rects)
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if not inter.is_empty():
            assert inter.area <= a.area + 1e-6
            assert inter.area <= b.area + 1e-6

    @given(rects, rects)
    def test_union_bounds_contains_both(self, a, b):
        u = a.union_bounds(b)
        if not a.is_empty():
            assert u.area >= a.area - 1e-6
        if not b.is_empty():
            assert u.area >= b.area - 1e-6


class TestTransforms:
    def test_translated(self):
        assert Rect(1, 1, 2, 2).translated(3, 4) == Rect(4, 5, 2, 2)

    def test_offset_by(self):
        assert Rect(1, 1, 2, 2).offset_by(Offset(-1, -1)) == Rect(0, 0, 2, 2)

    def test_scaled_uniform(self):
        assert Rect(1, 2, 3, 4).scaled(2) == Rect(2, 4, 6, 8)

    def test_scaled_anisotropic(self):
        assert Rect(1, 2, 3, 4).scaled(2, 0.5) == Rect(2, 1, 6, 2)

    def test_inflated_grows_about_center(self):
        r = Rect(10, 10, 10, 10).inflated(5)
        assert r == Rect(5, 5, 20, 20)

    def test_inflated_negative_clamps(self):
        r = Rect(0, 0, 4, 4).inflated(-10)
        assert r.is_empty()
        assert r.center == (2, 2)

    def test_clipped_to(self):
        assert Rect(-5, -5, 20, 20).clipped_to(Rect(0, 0, 10, 10)) == Rect(0, 0, 10, 10)

    def test_rounded(self):
        r = Rect(0.4, 0.6, 9.9, 10.2).rounded()
        assert r == Rect(0, 1, 10, 10)

    @given(rects, coords, coords)
    def test_translate_preserves_area(self, r, dx, dy):
        assert math.isclose(r.translated(dx, dy).area, r.area, rel_tol=1e-9, abs_tol=1e-6)


class TestOffset:
    def test_add(self):
        assert Offset(1, 2) + Offset(3, 4) == Offset(4, 6)

    def test_neg(self):
        assert -Offset(1, -2) == Offset(-1, 2)

    def test_is_zero(self):
        assert Offset().is_zero()
        assert not Offset(0, 1).is_zero()

    def test_offset_roundtrip_on_rect(self):
        r = Rect(5, 6, 7, 8)
        o = Offset(12, 34)
        assert r.offset_by(o).offset_by(-o) == r


class TestDistances:
    def test_center_distance(self):
        a = Rect(0, 0, 2, 2)  # center (1,1)
        b = Rect(3, 4, 2, 2)  # center (4,5)
        assert math.isclose(a.center_distance(b), 5.0)
