"""Tests for IoU, box matching, and non-maximum suppression."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Rect,
    ScoredBox,
    iou,
    match_boxes,
    non_max_suppression,
    pairwise_iou,
)

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=0.1, max_value=1e3, allow_nan=False, allow_infinity=False)
rects = st.builds(Rect, coords, coords, sizes, sizes)


class TestIoU:
    def test_identical_boxes(self):
        r = Rect(5, 5, 10, 10)
        assert iou(r, r) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou(Rect(0, 0, 5, 5), Rect(100, 100, 5, 5)) == 0.0

    def test_half_overlap(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 0, 10, 10)
        # intersection 50, union 150.
        assert iou(a, b) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert iou(Rect(0, 0, 0, 0), Rect(0, 0, 0, 0)) == 0.0

    def test_contained_box(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 2, 5, 5)
        assert iou(outer, inner) == pytest.approx(25 / 100)

    @given(rects, rects)
    def test_symmetric(self, a, b):
        assert math.isclose(iou(a, b), iou(b, a), rel_tol=1e-9, abs_tol=1e-12)

    @given(rects, rects)
    def test_bounded(self, a, b):
        v = iou(a, b)
        assert 0.0 <= v <= 1.0 + 1e-9

    @given(rects)
    def test_self_iou_is_one(self, r):
        assert iou(r, r) == pytest.approx(1.0)


class TestPairwiseIoU:
    def test_matches_scalar_iou(self):
        preds = [Rect(0, 0, 10, 10), Rect(5, 5, 10, 10)]
        truths = [Rect(0, 0, 10, 10), Rect(20, 20, 4, 4)]
        matrix = pairwise_iou(preds, truths)
        assert matrix.shape == (2, 2)
        for i, p in enumerate(preds):
            for j, t in enumerate(truths):
                assert matrix[i, j] == pytest.approx(iou(p, t), abs=1e-9)

    def test_empty_inputs(self):
        assert pairwise_iou([], [Rect(0, 0, 1, 1)]).shape == (0, 1)
        assert pairwise_iou([Rect(0, 0, 1, 1)], []).shape == (1, 0)


class TestMatchBoxes:
    def test_perfect_match(self):
        truths = [Rect(0, 0, 10, 10), Rect(50, 50, 10, 10)]
        matches, up, ut = match_boxes(truths, truths, threshold=0.9)
        assert len(matches) == 2
        assert up == [] and ut == []

    def test_threshold_rejects_loose_match(self):
        preds = [Rect(0, 0, 10, 10)]
        truths = [Rect(3, 3, 10, 10)]
        matches, up, ut = match_boxes(preds, truths, threshold=0.9)
        assert matches == []
        assert up == [0] and ut == [0]

    def test_one_to_one_no_double_claim(self):
        # Two predictions both overlap one truth; only one may match.
        truth = Rect(0, 0, 10, 10)
        preds = [Rect(0, 0, 10, 10), Rect(0.1, 0, 10, 10)]
        matches, up, ut = match_boxes(preds, [truth], threshold=0.5)
        assert len(matches) == 1
        assert matches[0] == (0, 0)  # earlier (higher confidence) wins
        assert up == [1]

    def test_best_truth_selected(self):
        preds = [Rect(0, 0, 10, 10)]
        truths = [Rect(4, 4, 10, 10), Rect(0.5, 0, 10, 10)]
        matches, _, _ = match_boxes(preds, truths, threshold=0.2)
        assert matches == [(0, 1)]

    def test_no_predictions(self):
        matches, up, ut = match_boxes([], [Rect(0, 0, 1, 1)], threshold=0.5)
        assert matches == [] and up == [] and ut == [0]


class TestNMS:
    def test_rejects_bad_score(self):
        with pytest.raises(ValueError):
            ScoredBox(Rect(0, 0, 1, 1), "UPO", 1.5)

    def test_suppresses_overlapping_same_class(self):
        boxes = [
            ScoredBox(Rect(0, 0, 10, 10), "AGO", 0.9),
            ScoredBox(Rect(1, 1, 10, 10), "AGO", 0.7),
        ]
        kept = non_max_suppression(boxes, iou_threshold=0.4)
        assert len(kept) == 1
        assert kept[0].score == 0.9

    def test_keeps_overlapping_different_class(self):
        boxes = [
            ScoredBox(Rect(0, 0, 10, 10), "AGO", 0.9),
            ScoredBox(Rect(1, 1, 10, 10), "UPO", 0.7),
        ]
        kept = non_max_suppression(boxes, iou_threshold=0.4)
        assert len(kept) == 2

    def test_class_agnostic_suppresses_across_classes(self):
        boxes = [
            ScoredBox(Rect(0, 0, 10, 10), "AGO", 0.9),
            ScoredBox(Rect(1, 1, 10, 10), "UPO", 0.7),
        ]
        kept = non_max_suppression(boxes, iou_threshold=0.4, class_agnostic=True)
        assert len(kept) == 1

    def test_keeps_disjoint_boxes(self):
        boxes = [
            ScoredBox(Rect(0, 0, 5, 5), "AGO", 0.5),
            ScoredBox(Rect(50, 50, 5, 5), "AGO", 0.6),
        ]
        assert len(non_max_suppression(boxes)) == 2

    def test_result_sorted_by_score(self):
        boxes = [
            ScoredBox(Rect(0, 0, 5, 5), "AGO", 0.5),
            ScoredBox(Rect(50, 50, 5, 5), "AGO", 0.9),
            ScoredBox(Rect(100, 0, 5, 5), "UPO", 0.7),
        ]
        kept = non_max_suppression(boxes)
        scores = [b.score for b in kept]
        assert scores == sorted(scores, reverse=True)

    @given(st.lists(st.builds(
        ScoredBox,
        st.builds(Rect, coords, coords, sizes, sizes),
        st.sampled_from(["AGO", "UPO"]),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ), max_size=12))
    def test_kept_boxes_mutually_compatible(self, boxes):
        kept = non_max_suppression(boxes, iou_threshold=0.5)
        for i, a in enumerate(kept):
            for b in kept[i + 1:]:
                if a.label == b.label:
                    from repro.geometry import iou as _iou
                    assert _iou(a.rect, b.rect) <= 0.5 + 1e-9
