"""Vectorized NMS must be bit-identical to the reference loop.

The two paths in :mod:`repro.geometry.nms` share a float64 pair-IoU
contract with a fixed operation order; these tests drive both over
seeded clustered box sets (where suppression chains actually happen)
and assert identical survivors in identical order — including float32
rect fields (the grid decoder's dtype) and deliberate score ties.
"""

import numpy as np
import pytest

from repro.geometry.nms import (
    ScoredBox,
    VECTORIZE_MIN_BOXES,
    _non_max_suppression_vec,
    non_max_suppression,
    non_max_suppression_loop,
)
from repro.geometry.rect import Rect


def _clustered_boxes(seed, n, n_clusters=4, float32=False, n_labels=2):
    """Boxes bunched around cluster centers so NMS has real work."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(20, 300, size=(n_clusters, 2))
    out = []
    for i in range(n):
        cx, cy = centers[int(rng.integers(0, n_clusters))]
        cx += float(rng.normal(0, 6))
        cy += float(rng.normal(0, 6))
        w = float(rng.uniform(18, 42))
        h = float(rng.uniform(18, 42))
        x, y = cx - w / 2, cy - h / 2
        if float32:
            x, y, w, h = (np.float32(v) for v in (x, y, w, h))
        # Two-decimal scores force ties, exercising stable-sort order.
        score = float(round(float(rng.uniform(0.05, 0.99)), 2))
        label = f"c{int(rng.integers(0, n_labels))}"
        out.append(ScoredBox(Rect(x, y, w, h), label=label, score=score))
    return out


def _vectorized(boxes, iou_threshold, class_agnostic):
    ordered = sorted(boxes, key=lambda b: b.score, reverse=True)
    return _non_max_suppression_vec(ordered, iou_threshold, class_agnostic)


class TestLoopVsVectorized:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("class_agnostic", [False, True])
    def test_bit_identical_on_clustered_sets(self, seed, class_agnostic):
        boxes = _clustered_boxes(seed, n=40, float32=bool(seed % 2))
        for thr in (0.2, 0.45, 0.7):
            loop = non_max_suppression_loop(boxes, thr, class_agnostic)
            vec = _vectorized(boxes, thr, class_agnostic)
            assert loop == vec

    def test_public_entry_point_matches_loop_above_cutover(self):
        boxes = _clustered_boxes(99, n=VECTORIZE_MIN_BOXES + 5)
        assert non_max_suppression(boxes) == non_max_suppression_loop(boxes)

    def test_public_entry_point_matches_loop_below_cutover(self):
        boxes = _clustered_boxes(7, n=VECTORIZE_MIN_BOXES - 2)
        assert non_max_suppression(boxes) == non_max_suppression_loop(boxes)

    def test_empty_and_singleton(self):
        assert non_max_suppression([]) == []
        only = [ScoredBox(Rect(0, 0, 10, 10), "AGO", 0.5)]
        assert non_max_suppression(only) == only

    def test_exact_duplicates_collapse_identically(self):
        # Duplicate rects tie on IoU == 1 > thr; both paths must keep
        # exactly one per class and preserve the stable order.
        rect = Rect(10.0, 10.0, 40.0, 40.0)
        boxes = [ScoredBox(rect, "AGO", 0.9), ScoredBox(rect, "AGO", 0.9),
                 ScoredBox(rect, "UPO", 0.8)] * 4
        loop = non_max_suppression_loop(boxes, 0.45, False)
        vec = _vectorized(boxes, 0.45, False)
        assert loop == vec
        assert len(loop) == 2
