"""Table VII — performance overhead of DARPA, decomposed by component.

100 replayed one-minute sessions, measured under four configurations:
baseline (no DARPA), + UI monitoring, + AUI detection, + UI decoration.
Paper averages: baseline 55.22% CPU / 4291.96 MB / 81 fps / 443.85 mW;
full DARPA 57.76% / 4413.85 MB / 74 fps / 474.12 mW — a total overhead
of +4.6% CPU, +2.8% memory, −8.6% frame rate, +6.8% power.
"""

import numpy as np

from repro.bench import build_runtime_fleet, print_table, run_darpa_over_fleet_parallel
from repro.core.observability import report_from_spans
from repro.vision import PortConfig, port_model

PAPER_ROWS = {
    "Baseline (w/o DARPA)": (55.22, 4291.96, 81, 443.85),
    "Baseline + UI monitoring": (55.91, 4352.21, 79, 451.88),
    "Baseline + UI monitoring + AUI detection": (57.11, 4407.56, 78, 469.63),
    "DARPA (monitoring + detection + decoration)": (57.76, 4413.85, 74, 474.12),
}

MODES = {
    "Baseline (w/o DARPA)": "baseline",
    "Baseline + UI monitoring": "monitor",
    "Baseline + UI monitoring + AUI detection": "detect",
    "DARPA (monitoring + detection + decoration)": "full",
}


def _mean_report(reports):
    cpu = float(np.mean([p.cpu_pct for p in reports]))
    mem = float(np.mean([p.memory_mb for p in reports]))
    fps = float(np.mean([p.fps for p in reports]))
    mw = float(np.mean([p.power_mw for p in reports]))
    return cpu, mem, fps, mw


def _span_derived_reports(results):
    """Rebuild each session's PerfReport purely from its span dump.

    The rebuilt report must be bit-identical to the legacy meter
    measurement — the table below is therefore *derived from spans*,
    not from the meter, without changing a digit.
    """
    reports = []
    for r in results:
        rebuilt = report_from_spans(r.spans, duration_ms=60_000.0)
        assert rebuilt == r.perf, \
            f"span-derived report diverged from the meter for {r.package}"
        reports.append(rebuilt)
    return reports


def test_table7_performance_overhead(benchmark, trained_model):
    sessions = build_runtime_fleet(n_apps=100, seed=0)
    ported = port_model(trained_model, PortConfig(quantization="fp16"))

    def run():
        out = {}
        for label, mode in MODES.items():
            results = run_darpa_over_fleet_parallel(sessions, ported, ct_ms=200.0,
                                           mode=mode, trace=True)
            out[label] = _mean_report(_span_derived_reports(results))
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, (cpu, mem, fps, mw) in measured.items():
        p_cpu, p_mem, p_fps, p_mw = PAPER_ROWS[label]
        rows.append([label, f"{cpu:.2f}", f"{mem:.1f}", f"{fps:.0f}",
                     f"{mw:.1f}", f"{p_cpu}/{p_mem}/{p_fps}/{p_mw}"])
    base = measured["Baseline (w/o DARPA)"]
    full = measured["DARPA (monitoring + detection + decoration)"]
    rows.append([
        "Total overhead",
        f"+{(full[0] - base[0]) / base[0]:.1%}",
        f"+{(full[1] - base[1]) / base[1]:.1%}",
        f"{(full[2] - base[2]) / base[2]:.1%}",
        f"+{(full[3] - base[3]) / base[3]:.1%}",
        "+4.6% / +2.8% / -8.6% / +6.8%",
    ])
    print_table(
        ["Configuration", "CPU %", "Memory MB", "FPS", "Power mW",
         "Paper (cpu/mem/fps/mW)"],
        rows, title="Table VII: Performance overhead of DARPA",
    )

    # Shape assertions: monotone cost growth, detection dominates, and
    # the total stays in the paper's "low single-digit percent" regime.
    cpu = [measured[k][0] for k in PAPER_ROWS]
    assert cpu == sorted(cpu), "each component must add CPU"
    detect_step = measured["Baseline + UI monitoring + AUI detection"][3] - \
        measured["Baseline + UI monitoring"][3]
    deco_step = full[3] - measured["Baseline + UI monitoring + AUI detection"][3]
    monitor_step = measured["Baseline + UI monitoring"][3] - base[3]
    assert detect_step > monitor_step > 0, "detection is the dominant cost"
    assert detect_step > deco_step > 0
    assert (full[0] - base[0]) / base[0] < 0.12, "CPU overhead must stay small"
    assert (base[2] - full[2]) / base[2] < 0.20, "fps drop must stay small"
