"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints
it next to the published values.  Heavy artifacts (the trained detector,
rendered splits, runtime fleets) are cached — in process via the
fixtures here, across processes via ``repro.bench.cache`` — so the
suite runs end-to-end without retraining per table.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.bench import get_corpus_and_splits, get_test_dataset, get_trained_model


# Output capture is disabled project-wide (addopts = "-s"): the whole
# point of these benchmarks is the regenerated paper tables they print,
# and pytest's fd-level capture cannot be reliably suspended per
# directory (its own runtest wrapper re-enables capture inside any
# conftest wrapper).


@pytest.fixture(scope="session")
def corpus_and_splits():
    return get_corpus_and_splits(seed=0)


@pytest.fixture(scope="session")
def trained_model():
    """The benchmark detector (trained once, cached on disk)."""
    return get_trained_model()


@pytest.fixture(scope="session")
def test_dataset():
    return get_test_dataset()


def one_shot(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
