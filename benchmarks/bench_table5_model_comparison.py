"""Table V — YOLOv5 vs Faster/Mask-RCNN with VGG16/ResNet50 backbones.

Paper (All-class P/R/F1): Faster RCNN+VGG16 0.732/0.710/0.721;
Faster RCNN+ResNet50 0.744/0.698/0.720; Mask RCNN+VGG16
0.802/0.762/0.781; Mask RCNN+ResNet50 0.829/0.789/0.809;
YOLOv5 0.881/0.838/0.859.  YOLOv5 is also ~2.5x faster per frame.
"""

from repro.bench import (
    evaluate_detector,
    get_corpus_and_splits,
    print_table,
)
from repro.vision import build_detection_dataset
from repro.vision.rcnn import table5_model_suite
from repro.wallclock import Stopwatch

PAPER = {
    "Faster RCNN+VGG16": (0.732, 0.710, 0.721),
    "Faster RCNN+ResNet50": (0.744, 0.698, 0.720),
    "Mask RCNN+VGG16": (0.802, 0.762, 0.781),
    "Mask RCNN+ResNet50": (0.829, 0.789, 0.809),
    "YOLOv5": (0.881, 0.838, 0.859),
}

#: RCNN heads train on a corpus subset: their classical backbones are
#: sample-efficient and the full 642 images only move the heads by
#: noise while tripling feature-extraction time.
RCNN_TRAIN_SIZE = 240


def _mean_latency_ms(detector, dataset, n=30):
    watch = Stopwatch()
    for i in range(min(n, len(dataset))):
        if hasattr(detector, "last_inference_ms"):
            detector.detect_screen(dataset.screen_images[i])
        else:
            detector.detect_screen(dataset.screen_images[i], refine=True)
    return watch.elapsed_ms() / min(n, len(dataset))


def test_table5_model_comparison(benchmark, trained_model, test_dataset):
    _, splits = get_corpus_and_splits(seed=0)
    rcnn_train = build_detection_dataset(splits["train"][:RCNN_TRAIN_SIZE],
                                         keep_screen_images=True)

    def run():
        results = {}
        latencies = {}
        for name, det in table5_model_suite(seed=0).items():
            det.fit(rcnn_train)
            results[name] = evaluate_detector(det, test_dataset)
            latencies[name] = _mean_latency_ms(det, test_dataset)
        results["YOLOv5"] = evaluate_detector(trained_model, test_dataset)
        latencies["YOLOv5"] = _mean_latency_ms(trained_model, test_dataset)
        return results, latencies

    results, latencies = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in PAPER:
        p, r, f = results[name].row("All")
        pp, pr, pf = PAPER[name]
        rows.append([name, p, r, f, f"{latencies[name]:.0f}ms",
                     f"{pp}/{pr}/{pf}"])
    print_table(
        ["Model", "Precision", "Recall", "F1", "Latency", "Paper (P/R/F1)"],
        rows, title="Table V: Comparison between YOLOv5 and other models",
    )

    f1 = {name: results[name].row("All")[2] for name in PAPER}
    # Shape assertions from the paper:
    # 1. The one-stage detector beats every RCNN variant.
    best_rcnn = max(v for k, v in f1.items() if k != "YOLOv5")
    assert f1["YOLOv5"] > best_rcnn, f1
    # 2. Mask refinement helps both backbones at IoU 0.9.
    assert f1["Mask RCNN+VGG16"] > f1["Faster RCNN+VGG16"]
    assert f1["Mask RCNN+ResNet50"] > f1["Faster RCNN+ResNet50"]
    # 3. YOLO is clearly faster than the two-stage pipelines.
    slowest_rcnn = max(v for k, v in latencies.items() if k != "YOLOv5")
    assert latencies["YOLOv5"] * 1.5 < slowest_rcnn
