"""Section III-A layout statistics.

Paper: 94.6% of AUIs place the AGO centrally; 73.1% of AUIs with a UPO
place it in a corner; 35.1% of AUIs are first-party (376/1,072), the
rest come from third-party components.
"""

from repro.bench import print_table


def test_layout_patterns(benchmark, corpus_and_splits):
    corpus, _ = corpus_and_splits
    stats = benchmark.pedantic(corpus.layout_statistics,
                               rounds=1, iterations=1)
    rows = [
        ["AGO placed centrally", f"{stats['ago_central']:.1%}", "94.6%"],
        ["UPO placed in a corner", f"{stats['upo_corner']:.1%}", "73.1%"],
        ["First-party AUIs", f"{stats['first_party']:.1%}", "35.1%"],
    ]
    print_table(["Layout pattern", "Measured", "Paper"], rows,
                title="Section III-A: Layout patterns of AUI")
    assert abs(stats["ago_central"] - 0.946) < 0.005
    assert abs(stats["upo_corner"] - 0.731) < 0.005
    assert abs(stats["first_party"] - 0.351) < 0.005
