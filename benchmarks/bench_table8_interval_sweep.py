"""Table VIII — performance under different cut-off intervals.

Paper (Redmi 10 averages): ct=50ms costs 86.5% CPU / 59 fps / 586.92 mW;
ct=200ms costs 57.8% / 74 fps / 474.12 mW; larger intervals keep
improving slightly.  The sweep uses the oracle detector: the quantity
being swept is how much work the debouncer admits, and the ct-dependent
operation counts (screenshots, inferences, decorations) are identical
whatever model sits behind them.
"""

import numpy as np

from repro.bench import build_runtime_fleet, print_table, run_darpa_over_fleet_parallel
from repro.core.observability import report_from_spans

PAPER_ROWS = {
    50: (86.5, 4452.53, 59, 586.92),
    100: (69.8, 4419.69, 66, 499.55),
    200: (57.8, 4413.85, 74, 474.12),
    300: (54.8, 4401.12, 69, 481.5),
    400: (59.7, 4360.52, 76, 469.96),
    500: (56.1, 4354.63, 79, 464.85),
}

INTERVALS = (50, 100, 200, 300, 400, 500)


def test_table8_interval_sweep(benchmark):
    sessions = build_runtime_fleet(n_apps=100, seed=0)

    def run():
        out = {}
        for ct in INTERVALS:
            results = run_darpa_over_fleet_parallel(sessions, "oracle", ct_ms=float(ct),
                                           mode="full", trace=True)
            # The sweep's numbers are rebuilt purely from the exported
            # spans; each rebuild is asserted bit-identical to the
            # legacy meter measurement before it is averaged.
            reports = []
            for r in results:
                rebuilt = report_from_spans(r.spans, duration_ms=60_000.0)
                assert rebuilt == r.perf, \
                    f"span-derived report diverged at ct={ct}"
                reports.append(rebuilt)
            out[ct] = (
                float(np.mean([p.cpu_pct for p in reports])),
                float(np.mean([p.memory_mb for p in reports])),
                float(np.mean([p.fps for p in reports])),
                float(np.mean([p.power_mw for p in reports])),
            )
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for ct in INTERVALS:
        cpu, mem, fps, mw = measured[ct]
        p = PAPER_ROWS[ct]
        rows.append([ct, f"{cpu:.1f}", f"{mem:.1f}", f"{fps:.0f}",
                     f"{mw:.1f}", f"{p[0]}/{p[1]}/{p[2]}/{p[3]}"])
    print_table(
        ["Interval (ms)", "CPU %", "Memory MB", "FPS", "Power mW",
         "Paper (cpu/mem/fps/mW)"],
        rows,
        title="Table VIII: Performance of DARPA under different intervals",
    )

    # Shape: cost decreases as the interval grows; the 50ms setting is
    # clearly the most expensive, and 200ms sits in the flat region.
    cpu50, cpu200, cpu500 = (measured[50][0], measured[200][0],
                             measured[500][0])
    assert cpu50 > cpu200 > cpu500
    mw = [measured[ct][3] for ct in INTERVALS]
    assert mw[0] == max(mw)
    assert measured[50][2] < measured[500][2]  # fps recovers with larger ct
    # 200ms is already within ~6% CPU of the cheapest setting.
    assert (cpu200 - cpu500) / cpu500 < 0.10
