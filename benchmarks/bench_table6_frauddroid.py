"""Table VI — end-to-end DARPA vs a FraudDroid-like approach.

100 apps run for one minute each; every settled screen is judged both
by DARPA's CV pipeline (screenshots) and by the FraudDroid-like
heuristics (ADB metadata).  Paper confusion matrices over the 243
UPO-bearing screenshots and 253 non-AUI screenshots:

    FraudDroid: 35 AUI hits / 208 missed; 11 FP / 242 TN
    DARPA:     213 AUI hits /  30 missed; 21 FP / 232 TN
"""

from repro.baselines import FraudDroidDetector
from repro.bench import build_runtime_fleet, print_table, run_darpa_over_fleet_parallel
from repro.bench.tables import echo
from repro.vision import PortConfig, port_model
from repro.vision.metrics import ScreenConfusion


def test_table6_darpa_vs_frauddroid(benchmark, trained_model):
    sessions = build_runtime_fleet(n_apps=100, seed=0)
    ported = port_model(trained_model, PortConfig(quantization="fp16"))
    frauddroid = FraudDroidDetector()

    def run():
        results = run_darpa_over_fleet_parallel(sessions, ported, ct_ms=200.0,
                                       mode="full", frauddroid=frauddroid)
        darpa = ScreenConfusion()
        fraud = ScreenConfusion()
        for res in results:
            for labeled, flagged in res.screen_verdicts:
                darpa.add_screen(labeled, flagged)
            for labeled, flagged in res.frauddroid_verdicts:
                fraud.add_screen(labeled, flagged)
        return darpa, fraud

    darpa, fraud = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["FraudDroid", "AUI", fraud.tp, fraud.fn, "35 / 208"],
        ["FraudDroid", "Non-AUI", fraud.fp, fraud.tn, "11 / 242"],
        ["DARPA", "AUI", darpa.tp, darpa.fn, "213 / 30"],
        ["DARPA", "Non-AUI", darpa.fp, darpa.tn, "21 / 232"],
    ]
    print_table(
        ["Detector", "Labeled", "Flagged AUI", "Flagged non-AUI",
         "Paper (AUI/non-AUI)"],
        rows, title="Table VI: Confusion matrix of DARPA and FraudDroid",
    )
    echo(f"DARPA:      recall={darpa.recall:.3f} precision={darpa.precision:.3f} "
          f"(paper: 0.876 / 0.910)")
    echo(f"FraudDroid: recall={fraud.recall:.3f} precision={fraud.precision:.3f} "
          f"(paper: 0.144 / 0.761)")

    # Shape assertions: CV coverage dwarfs metadata heuristics.
    assert darpa.recall > 0.7
    assert fraud.recall < 0.35
    assert darpa.recall > 3 * fraud.recall
    # Both keep decent precision (heuristics are precise when they fire).
    assert darpa.precision > 0.75
