"""Micro-benchmarks of the hot kernels.

These use pytest-benchmark's repeated timing (no pedantic one-shots):
the conv forward pass, the IoU matrix, NMS, screen rendering, and the
end-to-end per-frame detection latency that the paper's overhead model
depends on.  The batched-vs-looped comparison additionally persists its
timings to ``BENCH_kernels.json`` at the repository root, so the
serving-path speedup is machine-checkable across commits.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.android import Device, View, render_screen
from repro.datagen import build_aui_screen
from repro.datagen.specs import AuiType, SampleSpec
from repro.geometry import Rect, ScoredBox, non_max_suppression, pairwise_iou
from repro.imaging.color import PALETTE
from repro.vision.dataset import to_input_tensor
from repro.vision.nn import Conv2D


@pytest.fixture(scope="module")
def screen_image():
    spec = SampleSpec(index=0, aui_type=AuiType.ADVERTISEMENT, has_ago=True,
                      n_upo=1, ago_central=True, upo_corner=True,
                      fullscreen=False, first_party=False, hard_upo=False,
                      style_seed=99)
    from repro.datagen.corpus import render_state
    img, _ = render_state(build_aui_screen(spec))
    return img


def test_micro_conv_forward(benchmark):
    conv = Conv2D(16, 24, kernel=3, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(0, 1, (1, 16, 64, 36)).astype(np.float32)
    out = benchmark(lambda: conv.forward(x))
    assert out.shape == (1, 24, 64, 36)


def test_micro_pairwise_iou(benchmark):
    rng = np.random.default_rng(0)
    boxes = [Rect(float(rng.uniform(0, 300)), float(rng.uniform(0, 600)),
                  float(rng.uniform(10, 60)), float(rng.uniform(10, 60)))
             for _ in range(64)]
    matrix = benchmark(lambda: pairwise_iou(boxes, boxes))
    assert matrix.shape == (64, 64)


def test_micro_nms(benchmark):
    rng = np.random.default_rng(0)
    boxes = [ScoredBox(Rect(float(rng.uniform(0, 300)), float(rng.uniform(0, 600)),
                            30, 30), "UPO", float(rng.uniform(0.1, 1.0)))
             for _ in range(48)]
    kept = benchmark(lambda: non_max_suppression(boxes))
    assert kept


def test_micro_render_screen(benchmark):
    device = Device(seed=0)
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    for i in range(12):
        root.add_child(View(bounds=Rect(20, 20 + i * 44, 320, 36),
                            bg_color=PALETTE["light_gray"], corner_radius=6))
    device.window_manager.attach_app_window(root, "com.demo")
    canvas = benchmark(lambda: render_screen(device.window_manager))
    assert canvas.pixels.shape == (640, 360, 3)


def test_micro_detect_screen_latency(benchmark, trained_model, screen_image):
    """Per-frame end-to-end latency (preprocess + CNN + refine)."""
    dets = benchmark(lambda: trained_model.detect_screen(screen_image))
    assert isinstance(dets, list)


def _best_of(fn, rounds: int = 3) -> float:
    """Best-of-N wall time in milliseconds (one warmup call first)."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def test_micro_batched_vs_looped_forward(trained_model, test_dataset):
    """Batched plan forward vs the legacy per-image training-graph
    forward, at batch sizes 1/8/32; persists ``BENCH_kernels.json``.

    The acceptance bar for the serving path: one batch-32 plan forward
    beats 32 legacy size-1 forwards by at least 3x.
    """
    images = test_dataset.screen_images[:32]
    assert len(images) == 32
    x = np.stack([to_input_tensor(img) for img in images])
    plan = trained_model.inference_plan()

    batched = {}
    looped = {}
    for n in (1, 8, 32):
        xb = x[:n]
        batched[n] = _best_of(lambda: plan.forward(xb))
        looped[n] = _best_of(lambda: [
            trained_model.forward(xb[i:i + 1], training=False)
            for i in range(n)
        ])
    speedup = {n: looped[n] / batched[n] for n in batched}
    payload = {
        "kernel": "tiny_yolo_forward",
        "input_shape": list(x.shape[1:]),
        "batched_forward_ms": {str(n): round(v, 3) for n, v in batched.items()},
        "looped_forward_ms": {str(n): round(v, 3) for n, v in looped.items()},
        "speedup": {str(n): round(v, 3) for n, v in speedup.items()},
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nbatched-vs-looped forward (ms): {payload['batched_forward_ms']} "
          f"vs {payload['looped_forward_ms']} -> speedup {payload['speedup']}")
    assert speedup[32] >= 3.0, (
        f"batch-32 plan must be >=3x faster than 32 size-1 forwards, "
        f"got {speedup[32]:.2f}x")
