"""Micro-benchmarks of the hot kernels.

These use pytest-benchmark's repeated timing (no pedantic one-shots):
the conv forward pass, the IoU matrix, NMS, screen rendering, and the
end-to-end per-frame detection latency that the paper's overhead model
depends on.  The execution-mode sweep additionally persists its timings
to ``BENCH_kernels.json`` at the repository root (override the
directory with ``DARPA_BENCH_OUT``; the payload carries a provenance
manifest), so the serving-path speedup is machine-checkable across
commits.  The int8 test reports the Table-IV-style accuracy delta of
calibrated int8 execution against the float plan.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.android import Device, View, render_screen
from repro.bench import evaluate_detector, print_table
from repro.bench.kernels import run_kernel_bench
from repro.datagen import build_aui_screen
from repro.datagen.specs import AuiType, SampleSpec
from repro.geometry import Rect, ScoredBox, non_max_suppression, pairwise_iou
from repro.imaging.color import PALETTE
from repro.vision import DeployConfig, PortConfig, TinyYolo, YoloConfig, port_model
from repro.vision.dataset import to_input_tensor
from repro.vision.nn import Conv2D
from repro.wallclock import monotonic_ms


@pytest.fixture(scope="module")
def screen_image():
    spec = SampleSpec(index=0, aui_type=AuiType.ADVERTISEMENT, has_ago=True,
                      n_upo=1, ago_central=True, upo_corner=True,
                      fullscreen=False, first_party=False, hard_upo=False,
                      style_seed=99)
    from repro.datagen.corpus import render_state
    img, _ = render_state(build_aui_screen(spec))
    return img


def test_micro_conv_forward(benchmark):
    conv = Conv2D(16, 24, kernel=3, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(0, 1, (1, 16, 64, 36)).astype(np.float32)
    out = benchmark(lambda: conv.forward(x))
    assert out.shape == (1, 24, 64, 36)


def test_micro_pairwise_iou(benchmark):
    rng = np.random.default_rng(0)
    boxes = [Rect(float(rng.uniform(0, 300)), float(rng.uniform(0, 600)),
                  float(rng.uniform(10, 60)), float(rng.uniform(10, 60)))
             for _ in range(64)]
    matrix = benchmark(lambda: pairwise_iou(boxes, boxes))
    assert matrix.shape == (64, 64)


def test_micro_nms(benchmark):
    rng = np.random.default_rng(0)
    boxes = [ScoredBox(Rect(float(rng.uniform(0, 300)), float(rng.uniform(0, 600)),
                            30, 30), "UPO", float(rng.uniform(0.1, 1.0)))
             for _ in range(48)]
    kept = benchmark(lambda: non_max_suppression(boxes))
    assert kept


def test_micro_render_screen(benchmark):
    device = Device(seed=0)
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    for i in range(12):
        root.add_child(View(bounds=Rect(20, 20 + i * 44, 320, 36),
                            bg_color=PALETTE["light_gray"], corner_radius=6))
    device.window_manager.attach_app_window(root, "com.demo")
    canvas = benchmark(lambda: render_screen(device.window_manager))
    assert canvas.pixels.shape == (640, 360, 3)


def test_micro_detect_screen_latency(benchmark, trained_model, screen_image):
    """Per-frame end-to-end latency (preprocess + CNN + refine)."""
    dets = benchmark(lambda: trained_model.detect_screen(screen_image))
    assert isinstance(dets, list)


def _best_of(fn, rounds: int = 3) -> float:
    """Best-of-N wall time in milliseconds (one warmup call first)."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = monotonic_ms()
        fn()
        best = min(best, monotonic_ms() - t0)
    return best


def test_micro_kernel_modes():
    """Forward-pass execution-mode sweep; persists ``BENCH_kernels.json``.

    Runs the shared :func:`repro.bench.kernels.run_kernel_bench` sweep
    (fp32 per-image / fp32 tiled / calibrated int8 / multicore) and
    re-measures the legacy per-image training-graph forward *in the
    same process*, so the acceptance ratio compares two numbers from
    the same machine state — robust to host speed, unlike a bar
    against the committed absolute milliseconds.
    """
    out_dir = Path(os.environ.get(
        "DARPA_BENCH_OUT", str(Path(__file__).resolve().parents[1])))
    payload = run_kernel_bench(out_path=str(out_dir / "BENCH_kernels.json"))

    # Same-machine reference: the training graph looped image-by-image
    # (weights don't affect timing, so the seeded untrained model is
    # exactly as heavy as the trained one).
    model = TinyYolo(YoloConfig(), seed=0)
    x = np.random.default_rng(0).random(
        (32, 3, model.config.input_h, model.config.input_w), dtype=np.float32)
    looped_ms = _best_of(lambda: [
        model.forward(x[i:i + 1], training=False) for i in range(32)])

    rows = [[name, record["forward_ms"]["32"],
             f"{record['speedup_vs_per_image']:.2f}x",
             f"{looped_ms / record['forward_ms']['32']:.2f}x"]
            for name, record in payload["modes"].items()]
    print_table(["Mode", "batch-32 ms", "vs per-image", "vs legacy loop"],
                rows, title="TinyYolo forward execution modes")
    print(f"legacy looped forward: {looped_ms:.1f} ms; best mode vs "
          f"{payload['baseline_ms_batch32']} ms historical baseline: "
          f"{payload['speedup_vs_baseline_batch32']:.2f}x")

    best_ms = min(r["forward_ms"]["32"] for r in payload["modes"].values())
    assert looped_ms / best_ms >= 4.0, (
        f"best plan mode must be >=4x faster than the looped training "
        f"graph, got {looped_ms / best_ms:.2f}x")
    assert payload["speedup_vs_baseline_batch32"] > 1.0


def test_int8_accuracy_delta(trained_model, test_dataset):
    """Table-IV-style check: calibrated int8 execution vs the float plan.

    Both sides run the same BN-folded weights; the only difference is
    the int8 GEMM path (per-channel weight scales, per-tensor
    activation scales calibrated on real test screens).  The F1 delta
    must stay within a small epsilon of the float plan.
    """
    float_result = evaluate_detector(trained_model, test_dataset)

    calibration = np.stack([to_input_tensor(img)
                            for img in test_dataset.screen_images[:8]])
    int8_port = port_model(
        trained_model, PortConfig(quantization="none"),
        deploy=DeployConfig(precision="int8", gemm="tiled"),
        calibration=calibration)
    int8_result = evaluate_detector(int8_port, test_dataset)

    rows = []
    for name, result in (("float plan", float_result),
                         ("int8 plan", int8_result)):
        for cls in ("UPO", "AGO", "All"):
            p, r, f = result.row(cls)
            rows.append([name, cls, p, r, f])
    print_table(["Execution", "AUI Type", "Precision", "Recall", "F1"],
                rows, title="Calibrated int8 execution vs float")

    f_float = float_result.row("All")[2]
    f_int8 = int8_result.row("All")[2]
    print(f"int8 All-F1 delta: {f_int8 - f_float:+.4f}")
    assert abs(f_int8 - f_float) <= 0.02, (
        f"int8 execution must stay within 2 F1 points of float, "
        f"delta {f_int8 - f_float:+.4f}")
