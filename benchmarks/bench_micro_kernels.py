"""Micro-benchmarks of the hot kernels.

These use pytest-benchmark's repeated timing (no pedantic one-shots):
the conv forward pass, the IoU matrix, NMS, screen rendering, and the
end-to-end per-frame detection latency that the paper's overhead model
depends on.
"""

import numpy as np
import pytest

from repro.android import Device, View, render_screen
from repro.datagen import build_aui_screen
from repro.datagen.specs import AuiType, SampleSpec
from repro.geometry import Rect, ScoredBox, non_max_suppression, pairwise_iou
from repro.imaging.color import PALETTE
from repro.vision.nn import Conv2D


@pytest.fixture(scope="module")
def screen_image():
    spec = SampleSpec(index=0, aui_type=AuiType.ADVERTISEMENT, has_ago=True,
                      n_upo=1, ago_central=True, upo_corner=True,
                      fullscreen=False, first_party=False, hard_upo=False,
                      style_seed=99)
    from repro.datagen.corpus import render_state
    img, _ = render_state(build_aui_screen(spec))
    return img


def test_micro_conv_forward(benchmark):
    conv = Conv2D(16, 24, kernel=3, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(0, 1, (1, 16, 64, 36)).astype(np.float32)
    out = benchmark(lambda: conv.forward(x))
    assert out.shape == (1, 24, 64, 36)


def test_micro_pairwise_iou(benchmark):
    rng = np.random.default_rng(0)
    boxes = [Rect(float(rng.uniform(0, 300)), float(rng.uniform(0, 600)),
                  float(rng.uniform(10, 60)), float(rng.uniform(10, 60)))
             for _ in range(64)]
    matrix = benchmark(lambda: pairwise_iou(boxes, boxes))
    assert matrix.shape == (64, 64)


def test_micro_nms(benchmark):
    rng = np.random.default_rng(0)
    boxes = [ScoredBox(Rect(float(rng.uniform(0, 300)), float(rng.uniform(0, 600)),
                            30, 30), "UPO", float(rng.uniform(0.1, 1.0)))
             for _ in range(48)]
    kept = benchmark(lambda: non_max_suppression(boxes))
    assert kept


def test_micro_render_screen(benchmark):
    device = Device(seed=0)
    root = View(bounds=Rect(0, 0, 360, 568), bg_color=PALETTE["white"])
    for i in range(12):
        root.add_child(View(bounds=Rect(20, 20 + i * 44, 320, 36),
                            bg_color=PALETTE["light_gray"], corner_radius=6))
    device.window_manager.attach_app_window(root, "com.demo")
    canvas = benchmark(lambda: render_screen(device.window_manager))
    assert canvas.pixels.shape == (640, 360, 3)


def test_micro_detect_screen_latency(benchmark, trained_model, screen_image):
    """Per-frame end-to-end latency (preprocess + CNN + refine)."""
    dets = benchmark(lambda: trained_model.detect_screen(screen_image))
    assert isinstance(dets, list)
