"""Table II — ground-truth dataset split (6:2:2).

Paper: train 642 shots (453 AGO / 657 UPO), val 215 (150 / 223),
test 215 (141 / 222).  (The paper's printed UPO total, 1,103, is one
more than its own split rows sum to; we honour the rows.)
"""

from repro.bench import print_table
from repro.datagen import TABLE2_SPLITS
from repro.datagen.splits import split_summary


def test_table2_dataset_split(benchmark, corpus_and_splits):
    _, splits = corpus_and_splits

    summary = benchmark.pedantic(lambda: split_summary(splits),
                                 rounds=1, iterations=1)

    rows = []
    for name, label in (("train", "Training Set"), ("val", "Validation Set"),
                        ("test", "Testing Set")):
        shots, ago, upo = summary[name]
        p_shots, p_ago, p_upo = TABLE2_SPLITS[name]
        rows.append([label, ago, upo, shots,
                     f"{p_ago}/{p_upo}/{p_shots}"])
    total = tuple(sum(summary[n][i] for n in summary) for i in range(3))
    rows.append(["Total", total[1], total[2], total[0], "744/1102/1072"])
    print_table(
        ["Set Type", "AGO", "UPO", "Total shots", "Paper (AGO/UPO/shots)"],
        rows,
        title="Table II: Distribution of the ground-truth dataset D_aui",
    )
    for name in ("train", "val", "test"):
        assert summary[name] == TABLE2_SPLITS[name]
