"""Table IV — model migration and language-independence.

Paper: YOLOv5 on the server reaches All-F1 0.859; porting to the phone
(ncnn) costs ~1.7 points (0.842); re-training and evaluating with all
AGO/UPO texts masked changes almost nothing (All-F1 0.853), showing the
signal is visual appearance, not language.
"""

from repro.bench import evaluate_detector, get_test_dataset, get_trained_model, print_table
from repro.vision import PortConfig, port_model

PAPER = {
    "YOLOv5 (on Server)": {"UPO": (0.925, 0.867, 0.895),
                           "AGO": (0.837, 0.810, 0.823),
                           "All": (0.881, 0.838, 0.859)},
    "DARPA (ported, on device)": {"UPO": (0.901, 0.852, 0.876),
                                  "AGO": (0.815, 0.802, 0.808),
                                  "All": (0.858, 0.827, 0.842)},
    "YOLOv5 (with texts masked)": {"UPO": (0.871, 0.899, 0.885),
                                   "AGO": (0.882, 0.762, 0.818),
                                   "All": (0.877, 0.830, 0.853)},
}


def test_table4_migration_and_masking(benchmark, trained_model, test_dataset):
    def run():
        results = {}
        # Server model: the trained float32 graph.
        results["YOLOv5 (on Server)"] = evaluate_detector(
            trained_model, test_dataset)
        # Ported model: BN-folded, fp16-quantized.
        ported = port_model(trained_model, PortConfig(quantization="fp16"))
        results["DARPA (ported, on device)"] = evaluate_detector(
            ported, test_dataset)
        # Text-masked: model re-trained on masked renders, evaluated on
        # masked test renders (paper Fig. 7 protocol).
        masked_model = get_trained_model(masked=True)
        masked_test = get_test_dataset(masked=True)
        results["YOLOv5 (with texts masked)"] = evaluate_detector(
            masked_model, masked_test)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for model_name, result in results.items():
        for cls in ("UPO", "AGO", "All"):
            p, r, f = result.row(cls)
            pp, pr, pf = PAPER[model_name][cls]
            rows.append([model_name, cls, p, r, f, f"{pp}/{pr}/{pf}"])
    print_table(
        ["Model", "AUI Type", "Precision", "Recall", "F1", "Paper (P/R/F1)"],
        rows, title="Table IV: Effectiveness of the YOLOv5 model",
    )

    f_server = results["YOLOv5 (on Server)"].row("All")[2]
    f_ported = results["DARPA (ported, on device)"].row("All")[2]
    f_masked = results["YOLOv5 (with texts masked)"].row("All")[2]
    # Shape: porting costs little; masking costs almost nothing.
    assert f_ported <= f_server + 0.005, "porting should not improve the model"
    assert f_server - f_ported < 0.08, "porting loss should stay small"
    assert abs(f_server - f_masked) < 0.08, \
        "masked-text performance must stay close: the signal is visual"
