"""Ablations over DESIGN.md's called-out design choices.

Not a paper table — these benchmarks justify the reproduction's own
architecture decisions:

1. box refinement: none vs gradient edge-snap vs gated region snap
   (the strict IoU=0.9 metric is unreachable without the region snap);
2. quantization depth of the mobile port (fp32 / fp16 / int8);
3. FraudDroid recall as a function of the resource-id obfuscation rate
   (the Table VI mechanism, swept).
"""

import numpy as np

from repro.android import Device, dump_view_hierarchy
from repro.baselines import FraudDroidDetector
from repro.android.resources import ResourceIdPolicy
from repro.bench import evaluate_detector, get_corpus_and_splits, print_table
from repro.datagen import build_aui_screen
from repro.vision import DetectionEvaluator, PortConfig, port_model
from repro.vision.dataset import input_rect_to_screen, to_input_tensor
from repro.vision.refine import refine_detection_box, snap_box_to_edges


def _eval_with_refiner(model, dataset, refiner):
    """Evaluate the detector with a swapped refinement strategy."""
    evaluator = DetectionEvaluator(0.9)
    for i in range(len(dataset)):
        img = dataset.screen_images[i]
        dets = model.detect_batch(to_input_tensor(img)[None], 0.4)[0]
        out = []
        for d in dets:
            rect = input_rect_to_screen(d.rect)
            if refiner is not None:
                rect = refiner(img, rect)
            out.append(type(d)(rect=rect, label=d.label, score=d.score))
        evaluator.add_image(out, dataset.screen_labels[i])
    return evaluator.result()


def test_ablation_box_refinement(benchmark, trained_model, test_dataset):
    def run():
        return {
            "no refinement": _eval_with_refiner(trained_model, test_dataset, None),
            "gradient edge-snap": _eval_with_refiner(
                trained_model, test_dataset, snap_box_to_edges),
            "gated region snap (ours)": _eval_with_refiner(
                trained_model, test_dataset, refine_detection_box),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, *r.row("All")] for name, r in results.items()]
    print_table(["Refinement", "Precision", "Recall", "F1"], rows,
                title="Ablation: box refinement strategy at IoU 0.9")

    f1 = {k: v.row("All")[2] for k, v in results.items()}
    assert f1["gated region snap (ours)"] > f1["gradient edge-snap"]
    assert f1["gated region snap (ours)"] > f1["no refinement"] + 0.3, \
        "the strict IoU metric must be unreachable without region snap"


def test_ablation_quantization_depth(benchmark, trained_model, test_dataset):
    def run():
        out = {}
        for quant in ("none", "fp16", "int8"):
            ported = port_model(trained_model, PortConfig(quantization=quant))
            out[quant] = (evaluate_detector(ported, test_dataset),
                          ported.model_size_bytes())
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for quant, (res, size) in results.items():
        rows.append([quant, *res.row("All"), f"{size / 1024:.0f} KiB"])
    print_table(["Quantization", "Precision", "Recall", "F1", "Weights"],
                rows, title="Ablation: mobile-port quantization depth")

    f32 = results["none"][0].row("All")[2]
    int8 = results["int8"][0].row("All")[2]
    assert f32 - int8 < 0.1, "int8 must not destroy the model"
    assert results["int8"][1] < results["fp16"][1] < results["none"][1]


def test_ablation_obfuscation_sweep(benchmark):
    corpus, _ = get_corpus_and_splits(seed=0)
    specs = [s.spec for s in corpus.samples if s.spec.n_upo > 0][:120]
    detector = FraudDroidDetector()

    def recall_at(obfuscated_frac: float, seed: int = 0) -> float:
        rng = np.random.default_rng(seed)
        caught = 0
        for i, spec in enumerate(specs):
            policy = (ResourceIdPolicy.OBFUSCATED
                      if rng.random() < obfuscated_frac
                      else ResourceIdPolicy.READABLE)
            state = build_aui_screen(spec, package="com.sweep.app",
                                     id_policy=policy)
            device = Device()
            device.window_manager.attach_app_window(
                state.root, "com.sweep.app", fullscreen=spec.fullscreen)
            nodes = dump_view_hierarchy(device.window_manager)
            caught += detector.screen_is_aui(nodes)
        return caught / len(specs)

    fractions = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)

    def run():
        return {f: recall_at(f) for f in fractions}

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{f:.0%}", f"{recalls[f]:.1%}"] for f in fractions]
    print_table(["Obfuscated apps", "FraudDroid screen recall"], rows,
                title="Ablation: heuristic recall vs obfuscation rate")

    vals = [recalls[f] for f in fractions]
    assert all(a >= b - 0.02 for a, b in zip(vals, vals[1:])), \
        "recall must fall as obfuscation rises"
    assert recalls[0.0] > 0.5
    assert recalls[1.0] < 0.05
