"""Figure 8 — AUI coverage and workload under different ct values.

Paper: raising ct from 50ms to 200ms keeps 94.1% of the AUIs
(191 of 203 detected) while cutting the evaluated events/UI changes by
67.1% (1,538 of 2,291 dropped); beyond 200ms coverage keeps eroding for
little additional saving — hence ct=200ms.
"""

from repro.android.device import PerfOp
from repro.bench import build_runtime_fleet, print_table, run_darpa_over_fleet_parallel
from repro.bench.plotting import ascii_line_chart
from repro.bench.tables import echo
from repro.core.observability import ops_from_spans

INTERVALS = (50, 100, 200, 300, 400, 500)


def _span_derived_workload(results):
    """Events seen and screens analyzed, recomputed from span dumps.

    Events are the span-attributed EVENT_DELIVERED charges; analyzed
    screens are the ``analyze`` spans that ran to completion.  Both are
    asserted equal to the legacy counters before use — Figure 8's
    workload axis is thereby derived from the trace.
    """
    events = 0
    screens = 0
    for r in results:
        ops = ops_from_spans(r.spans)
        derived_events = ops.get(PerfOp.EVENT_DELIVERED.value, 0)
        assert derived_events == r.events_total, \
            f"span-derived event count diverged for {r.package}"
        derived_screens = sum(
            1 for s in r.spans
            if s["name"] == "analyze" and s["attributes"].get("outcome") == "ok")
        assert derived_screens == r.screens_analyzed, \
            f"span-derived screen count diverged for {r.package}"
        events += derived_events
        screens += derived_screens
    return events, screens


def test_fig8_coverage_vs_interval(benchmark):
    sessions = build_runtime_fleet(n_apps=100, seed=0)

    def run():
        out = {}
        for ct in INTERVALS:
            results = run_darpa_over_fleet_parallel(sessions, "oracle", ct_ms=float(ct),
                                           mode="full", trace=True)
            events, screens = _span_derived_workload(results)
            out[ct] = {
                "screens_analyzed": screens,
                "events": events,
                "auis_shown": sum(r.auis_shown for r in results),
                "auis_caught": sum(r.auis_flagged for r in results),
            }
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    base = measured[INTERVALS[0]]
    rows = []
    for ct in INTERVALS:
        m = measured[ct]
        coverage = m["auis_caught"] / max(1, base["auis_caught"])
        workload = m["screens_analyzed"] / max(1, base["screens_analyzed"])
        rows.append([ct, m["screens_analyzed"], m["auis_caught"],
                     f"{coverage:.1%}", f"{1 - workload:.1%}"])
    print_table(
        ["ct (ms)", "UIs analyzed", "AUIs caught", "Coverage vs 50ms",
         "Workload saved"],
        rows,
        title=("Figure 8: AUI coverage under different interval thresholds "
               "(paper: 94.1% coverage and 67.1% workload saved at 200ms)"),
    )

    echo(ascii_line_chart(
        {
            "UIs analyzed": [measured[ct]["screens_analyzed"]
                             for ct in INTERVALS],
            "AUIs caught": [measured[ct]["auis_caught"] for ct in INTERVALS],
        },
        x_labels=[f"{ct}ms" for ct in INTERVALS],
        title="Figure 8 trendlines (each series on its own scale)",
    ))

    caught = [measured[ct]["auis_caught"] for ct in INTERVALS]
    analyzed = [measured[ct]["screens_analyzed"] for ct in INTERVALS]
    # Shape: both curves decrease monotonically with ct...
    assert all(a >= b for a, b in zip(caught, caught[1:]))
    assert all(a >= b for a, b in zip(analyzed, analyzed[1:]))
    # ...and ct=200ms keeps most AUIs while dropping most of the work.
    coverage_200 = measured[200]["auis_caught"] / caught[0]
    workload_drop_200 = 1 - measured[200]["screens_analyzed"] / analyzed[0]
    assert coverage_200 > 0.85, f"coverage at 200ms too low: {coverage_200:.2%}"
    assert workload_drop_200 > 0.4, \
        f"workload saving at 200ms too small: {workload_drop_200:.2%}"
