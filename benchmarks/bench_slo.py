"""SLO benchmark — fleet telemetry, burn-rate alerting, merge parity.

Not a paper table: this exercises the fleet telemetry layer
(:mod:`repro.core.telemetry`) end-to-end.  A seeded fleet is run
zero-fault and under the storm fault plan; per-session latency
sketches and pipeline counters are merged fleet-wide and evaluated
against the stock SLOs (:func:`repro.core.telemetry.default_slos`).

Three hard guarantees are asserted:

- **merge parity**: the sequential run's ``telemetry.json`` /
  ``telemetry.prom`` artifacts are byte-identical to the sharded
  parallel run's — the sketch algebra is associative and integral, so
  no merge order can perturb a quantile;
- **quiet at zero faults**: every stock SLO is met and the burn-rate
  engine emits zero alerts on the fault-free fleet;
- **loud under storm**: the storm plan pushes every objective over
  budget and at least one multi-window burn alert fires.

Results land in ``BENCH_slo.json`` at the repo root (override the
directory with ``DARPA_BENCH_OUT`` — the CI regression gate uses that
to diff a fresh payload against the committed baseline).  Fleet size
is small by default (CI smoke); override with ``DARPA_SLO_APPS``.
"""

import filecmp
import json
import os
import tempfile
from pathlib import Path

from repro.bench import (
    STORM_DARPA_KWARGS,
    build_runtime_fleet,
    print_table,
    run_darpa_over_fleet,
    run_darpa_over_fleet_parallel,
    storm_fault_plan,
)
from repro.core.telemetry import (
    FleetTelemetry,
    SloEngine,
    TELEMETRY_VERSION,
    default_slos,
    session_telemetries,
)
from repro.profiling import PROFILE_KEY, Profile

N_APPS = int(os.environ.get("DARPA_SLO_APPS", "10"))
CT_MS = 200.0
OUT_DIR = Path(os.environ.get(
    "DARPA_BENCH_OUT", str(Path(__file__).resolve().parents[1])))
OUT_PATH = OUT_DIR / "BENCH_slo.json"

PLANS = [
    ("no faults", None, None),
    ("storm", storm_fault_plan(), STORM_DARPA_KWARGS),
]


def run_plan(sessions, plan, kwargs):
    """One fleet pass, sequential and sharded; returns the report plus
    the artifact-parity verdict and the fleet's merged stack profile."""
    with tempfile.TemporaryDirectory() as seq_dir, \
            tempfile.TemporaryDirectory() as par_dir:
        seq_results = run_darpa_over_fleet_parallel(
            sessions, "oracle", ct_ms=CT_MS, mode="full",
            fault_plan=plan, darpa_kwargs=kwargs,
            n_workers=1, trace_dir=seq_dir)
        run_darpa_over_fleet_parallel(
            sessions, "oracle", ct_ms=CT_MS, mode="full",
            fault_plan=plan, darpa_kwargs=kwargs,
            n_workers=2, n_shards=4, trace_dir=par_dir)
        # profile.json rides the same parity gate as the telemetry: the
        # profile merge algebra must be shard-order free too.
        parity = all(
            filecmp.cmp(os.path.join(seq_dir, name),
                        os.path.join(par_dir, name), shallow=False)
            for name in ("telemetry.json", "telemetry.prom",
                         "profile.json"))
        with open(os.path.join(seq_dir, "telemetry.json")) as fp:
            fleet = FleetTelemetry.from_snapshot(json.load(fp))
        with open(os.path.join(seq_dir, "profile.json")) as fp:
            profile = Profile.from_dict(json.load(fp))
    series = session_telemetries(seq_results)
    report = SloEngine(default_slos(ct_ms=CT_MS)).evaluate(series)
    return fleet, report, parity, profile


def summarize(name, fleet, report, parity):
    return {
        "plan": name,
        "sessions": fleet.sessions,
        "sequential_equals_sharded": parity,
        "quantiles": fleet.quantiles(),
        "sketch_counts": {name: fleet.sketches[name].count
                          for name in sorted(fleet.sketches)},
        "counters": dict(sorted(fleet.counters.items())),
        "slos": [r.to_dict() for r in report.results],
        "all_met": report.all_met,
        "alerts_total": len(report.alerts),
    }


def test_slo_fleet(benchmark):
    sessions = build_runtime_fleet(n_apps=N_APPS, seed=0)

    profiles = {}

    def run():
        rows = []
        for name, plan, kwargs in PLANS:
            fleet, report, parity, profile = run_plan(sessions, plan, kwargs)
            profiles[name] = profile
            rows.append(summarize(name, fleet, report, parity))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        ["Plan", "SLO", "Objective", "Compliance", "Burn", "Met", "Alerts"],
        [[row["plan"] if i == 0 else "", s["slo"], f"{s['objective']:.3f}",
          f"{s['compliance']:.4f}", f"{s['burn_rate']:.2f}",
          "yes" if s["met"] else "NO", len(s["alerts"])]
         for row in rows for i, s in enumerate(row["slos"])],
        title=f"Fleet SLOs ({N_APPS} apps, ct={CT_MS:.0f}ms)",
    )

    quiet, storm = rows
    # Merge parity: sharded artifacts byte-identical to sequential.
    assert quiet["sequential_equals_sharded"]
    assert storm["sequential_equals_sharded"]
    # Quiet at zero faults: every SLO met, no burn-rate alerts.
    assert quiet["all_met"], "zero-fault fleet violated an SLO"
    assert quiet["alerts_total"] == 0
    # Loud under storm: objectives blown, alerts fired.
    assert not storm["all_met"], "storm plan left every SLO met"
    assert storm["alerts_total"] >= 1

    reaction = quiet["quantiles"]["darpa.latency.reaction_ms"]
    assert quiet["sketch_counts"]["darpa.latency.reaction_ms"] > 0
    assert reaction["p50"] <= reaction["p95"] <= reaction["p99"]

    from repro.bench.provenance import build_manifest
    payload = {
        "manifest": build_manifest(
            "runtime-fleet-v1", 0,
            {"n_apps": N_APPS, "ct_ms": CT_MS,
             "telemetry_version": TELEMETRY_VERSION}),
        "benchmark": "slo",
        "n_apps": N_APPS,
        "ct_ms": CT_MS,
        "fleet_seed": 0,
        "telemetry_version": TELEMETRY_VERSION,
        "plans": rows,
        # The zero-fault fleet's stack profile: `repro regress --explain`
        # diffs a failing fresh payload's profile against this block to
        # attribute the drift to a frame.  Excluded from the value diff
        # (like the manifest).
        PROFILE_KEY: profiles["no faults"].to_dict(),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
