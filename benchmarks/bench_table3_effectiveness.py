"""Table III — overall effectiveness of DARPA (on-device model).

Paper (YOLOv5 ported with ncnn, IoU threshold 0.9):
UPO P/R/F1 = 0.901/0.852/0.876; AGO = 0.815/0.802/0.808;
All = 0.858/0.827/0.842.
"""

from repro.bench import evaluate_detector, print_table
from repro.vision import PortConfig, port_model

PAPER = {
    "UPO": (0.901, 0.852, 0.876),
    "AGO": (0.815, 0.802, 0.808),
    "All": (0.858, 0.827, 0.842),
}


def test_table3_overall_effectiveness(benchmark, trained_model, test_dataset):
    ported = port_model(trained_model, PortConfig(quantization="fp16"))

    result = benchmark.pedantic(
        lambda: evaluate_detector(ported, test_dataset),
        rounds=1, iterations=1,
    )

    rows = []
    for name in ("UPO", "AGO", "All"):
        p, r, f = result.row(name)
        pp, pr, pf = PAPER[name]
        rows.append([name, p, r, f, f"{pp}/{pr}/{pf}"])
    print_table(["AUI Type", "Precision", "Recall", "F1", "Paper (P/R/F1)"],
                rows, title="Table III: Overall effectiveness of DARPA")

    # Shape assertions: high-precision detection of both options, with
    # the pooled F1 in the paper's neighbourhood.
    _, _, f_all = result.row("All")
    assert f_all > 0.70, "pooled F1 collapsed"
    for name in ("UPO", "AGO"):
        p, r, _ = result.row(name)
        assert p > 0.6 and r > 0.55, f"{name} degenerated: P={p} R={r}"
