"""Table I — distribution of AUI types across the 1,072-sample corpus.

Paper: Advertisement 696 (64.9%), Sales promotion 179 (16.7%), Lucky
money 131 (12.2%), App upgrade 43 (4.0%), Operation guide 16 (1.5%),
Feedback request 4 (0.4%), Sensitive permission request 3 (0.3%).
"""

from repro.bench import print_table
from repro.datagen import TABLE1_QUOTAS


def test_table1_aui_type_distribution(benchmark, corpus_and_splits):
    corpus, _ = corpus_and_splits

    def run():
        return corpus.type_distribution()

    distribution = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(distribution.values())
    rows = []
    for aui_type, count in sorted(distribution.items(),
                                  key=lambda kv: -kv[1]):
        rows.append([
            aui_type.value, count, f"{count / total:.1%}",
            TABLE1_QUOTAS[aui_type],
        ])
    rows.append(["Total", total, "100%", sum(TABLE1_QUOTAS.values())])
    print_table(
        ["AUI Type", "Measured", "Pct", "Paper"],
        rows,
        title="Table I: Distribution of different types of AUI",
    )
    assert distribution == TABLE1_QUOTAS
    assert total == 1072
