"""Adversarial robustness (paper Section VII, Limitations).

The paper concedes that "determined attackers can freely test the
adopted CV-model to develop targeted attacks, such as adversarial patch
attacks" and that "currently, DARPA cannot defend against such targeted
attacks".  This benchmark reproduces that concession quantitatively: a
white-box PGD patch confined to the option region collapses detection
recall, and a cheap randomized-smoothing wrapper — the first mitigation
one would try — does NOT recover it against a converged attack (it only
helps against weak ones; see the unit tests).  Hardening the model is
future work there and here alike.
"""

from repro.bench import get_test_dataset, print_table
from repro.vision.adversarial import AttackConfig, SmoothedDetector, attack_recall
from repro.vision.dataset import DetectionDataset

N_IMAGES = 24  # PGD over the full split would dominate the bench run


def test_adversarial_patch_attack(benchmark, trained_model):
    full = get_test_dataset()
    subset = DetectionDataset(images=full.images[:N_IMAGES],
                              labels=full.labels[:N_IMAGES])

    def run():
        config = AttackConfig(steps=25, epsilon=0.35)
        plain = attack_recall(trained_model, subset, config)
        smoothed = SmoothedDetector(trained_model, n_samples=5,
                                    noise_sigma=0.03, vote_frac=0.4, seed=0)
        defended = attack_recall(trained_model, subset, config,
                                 detector=smoothed)
        return plain, defended

    plain, defended = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["undefended", plain["clean_recall"], plain["attacked_recall"]],
        ["randomized smoothing (5x)", defended["clean_recall"],
         defended["attacked_recall"]],
    ]
    print_table(["Detector", "Clean recall", "Attacked recall"], rows,
                title=("Adversarial patches vs DARPA (paper Limitations: "
                       "'DARPA cannot defend against such targeted attacks')"))

    # Shape assertions mirror the paper's claims:
    # 1. The detector is strong on clean inputs...
    assert plain["clean_recall"] > 0.7
    # 2. ...and a targeted white-box patch defeats it.
    assert plain["attacked_recall"] < plain["clean_recall"] - 0.3, \
        "the white-box attack must degrade detection substantially"
    # 3. Naive smoothing is NOT a defense against a converged attack
    #    (documented, not celebrated): it must not fully restore recall.
    assert defended["attacked_recall"] < plain["clean_recall"] - 0.2
