"""Daemon benchmark — offered-load sweep over the serving daemon.

Not a paper table: this exercises the deterministic serving daemon
(:mod:`repro.core.daemon`) end-to-end.  One seeded fleet is pushed
through the daemon at three offered loads (light, moderate, overload)
and the scheduling surface is recorded per point: p95 reaction latency
(from the merged fleet telemetry), shed rate, outcome mix, queue
deferral, and batch occupancy.

Four hard guarantees are asserted:

- **sequential equivalence**: at zero faults and offered load within
  capacity, the daemon's merged ``trace.jsonl`` / ``metrics.jsonl`` /
  ``telemetry.json`` / ``telemetry.prom`` are byte-identical to
  :func:`repro.bench.parallel.run_darpa_over_fleet_parallel` — for any
  worker count or batch size, scheduling leaves no fingerprint;
- **graceful overload**: the overload point sheds (typed rejections)
  and degrades (FraudDroid fallback) rather than hanging — every
  offered session reaches exactly one terminal outcome;
- **crash-safe resume**: a run killed mid-flight (``max_batches``) and
  resumed from its journal produces artifacts byte-identical to the
  uninterrupted run, ``daemon.json`` and ``drain.json`` included;
- **worker-fault inertness**: a seeded worker stall/crash plan delays
  batches but leaves every session artifact byte-identical — crashed
  batches re-enqueue without double-counting.

Results land in ``BENCH_daemon.json`` at the repo root (override the
directory with ``DARPA_BENCH_OUT``; the CI regression gate diffs a
fresh payload against the committed baseline).  Every recorded number
is simulated-deterministic, so the gate tolerates zero drift.  Fleet
size is small by default (CI smoke); override with ``DARPA_DAEMON_APPS``.
"""

import filecmp
import json
import os
import tempfile
from pathlib import Path

from repro.android.faults import FaultPlan
from repro.bench import (
    build_runtime_fleet,
    print_table,
    run_darpa_over_fleet_parallel,
)
from repro.bench.provenance import build_manifest
from repro.core.daemon import DaemonConfig, DarpaDaemon
from repro.core.telemetry import FleetTelemetry

N_APPS = int(os.environ.get("DARPA_DAEMON_APPS", "8"))
CT_MS = 200.0
OUT_DIR = Path(os.environ.get(
    "DARPA_BENCH_OUT", str(Path(__file__).resolve().parents[1])))
OUT_PATH = OUT_DIR / "BENCH_daemon.json"

ARTIFACTS = ("trace.jsonl", "metrics.jsonl", "telemetry.json",
             "telemetry.prom")

#: Offered-load sweep: the session inter-arrival shrinks while the
#: service capacity stays fixed, pushing the daemon from idle lanes
#: into admission-control shedding and deadline degradation.
SWEEP = [
    ("light", DaemonConfig(
        inter_arrival_ms=400.0, workers=2, batch_max=4,
        admission_rate_per_s=50.0, admission_burst=16,
        batch_service_ms=250.0, shed_deadline_ms=2000.0)),
    ("moderate", DaemonConfig(
        inter_arrival_ms=120.0, workers=2, batch_max=4,
        admission_rate_per_s=50.0, admission_burst=16,
        batch_service_ms=250.0, shed_deadline_ms=2000.0)),
    ("overload", DaemonConfig(
        inter_arrival_ms=10.0, workers=1, batch_max=2,
        admission_rate_per_s=20.0, admission_burst=2,
        batch_service_ms=400.0, shed_deadline_ms=50.0)),
]

#: In-capacity config used for the equivalence / resume / fault legs.
BASE = DaemonConfig(inter_arrival_ms=120.0, workers=2, batch_max=4,
                    admission_rate_per_s=50.0, admission_burst=16,
                    batch_service_ms=250.0, shed_deadline_ms=0.0)


def artifacts_equal(dir_a, dir_b, names=ARTIFACTS):
    return all(filecmp.cmp(os.path.join(dir_a, name),
                           os.path.join(dir_b, name), shallow=False)
               for name in names)


def reaction_p95(out_dir):
    with open(os.path.join(out_dir, "telemetry.json")) as fp:
        fleet = FleetTelemetry.from_snapshot(json.load(fp))
    sketch = fleet.sketches["darpa.latency.reaction_ms"]
    return sketch.quantile(0.95) if sketch.count else None


def sweep_point(sessions, name, config):
    with tempfile.TemporaryDirectory() as out:
        report = DarpaDaemon(sessions, "oracle", config=config, ct_ms=CT_MS,
                             out_dir=out, keep_results=False).run()
        p95 = reaction_p95(out)
    c = report.counters
    # No hangs: every offered session reached a terminal outcome, and
    # the outcome counts tile the offered count exactly (trichotomy).
    assert c["decorated"] + c["degraded"] + c["shed"] == c["offered"]
    deferrals = [e.deferred_ms for e in report.schedules
                 if e.start_ms is not None]
    return {
        "point": name,
        "inter_arrival_ms": config.inter_arrival_ms,
        "offered": c["offered"],
        "admitted": c["admitted"],
        "decorated": c["decorated"],
        "degraded": c["degraded"],
        "shed": c["shed"],
        "shed_by_kind": {"rate_limited": c["shed_rate_limited"],
                         "queue_full": c["shed_queue_full"],
                         "drained": c["shed_drained"]},
        "shed_rate": report.shed_rate,
        "reaction_p95_ms": p95,
        "mean_batch_occupancy": report.mean_batch_occupancy,
        "max_deferred_ms": max(deferrals) if deferrals else 0.0,
        "batches_completed": c["batches_completed"],
        "sim_end_ms": report.sim_end_ms,
    }


def check_sequential_equivalence(sessions):
    """Daemon artifacts == parallel-runner artifacts, several configs."""
    verdicts = {}
    with tempfile.TemporaryDirectory() as seq_dir:
        run_darpa_over_fleet_parallel(sessions, "oracle", ct_ms=CT_MS,
                                      mode="full", n_workers=1,
                                      trace_dir=seq_dir)
        for workers, batch_max in ((1, 1), (2, 4), (3, 2)):
            config = DaemonConfig(
                inter_arrival_ms=120.0, workers=workers, batch_max=batch_max,
                admission_rate_per_s=50.0, admission_burst=16,
                batch_service_ms=250.0, shed_deadline_ms=0.0,
                background_every=3)
            with tempfile.TemporaryDirectory() as out:
                DarpaDaemon(sessions, "oracle", config=config, ct_ms=CT_MS,
                            out_dir=out, keep_results=False).run()
                verdicts[f"w{workers}b{batch_max}"] = artifacts_equal(
                    seq_dir, out)
    return verdicts


def check_kill_resume(sessions):
    """Kill after one batch, resume, compare every artifact byte."""
    with tempfile.TemporaryDirectory() as full_dir, \
            tempfile.TemporaryDirectory() as kr_dir:
        DarpaDaemon(sessions, "oracle", config=BASE, ct_ms=CT_MS,
                    out_dir=full_dir, keep_results=False).run()
        killed = DarpaDaemon(sessions, "oracle", config=BASE, ct_ms=CT_MS,
                             out_dir=kr_dir, keep_results=False
                             ).run(max_batches=1)
        assert killed.killed and not killed.completed
        resumed = DarpaDaemon(sessions, "oracle", config=BASE, ct_ms=CT_MS,
                              out_dir=kr_dir, keep_results=False
                              ).run(resume=True)
        assert resumed.completed
        return {
            "resumed_sessions": len(resumed.resumed_indices),
            "identical": artifacts_equal(
                full_dir, kr_dir,
                names=ARTIFACTS + ("daemon.json", "drain.json")),
        }


def check_worker_faults(sessions):
    """Seeded stalls/crashes delay batches, never touch artifacts."""
    plan = FaultPlan(seed=99, worker_crash_rate=0.4, worker_stall_rate=0.3)
    with tempfile.TemporaryDirectory() as base_dir, \
            tempfile.TemporaryDirectory() as fault_dir:
        DarpaDaemon(sessions, "oracle", config=BASE, ct_ms=CT_MS,
                    out_dir=base_dir, keep_results=False).run()
        report = DarpaDaemon(sessions, "oracle", config=BASE, ct_ms=CT_MS,
                             out_dir=fault_dir, keep_results=False,
                             fault_plan=plan).run()
        return {
            "worker_crashes": report.counters["worker_crashes"],
            "worker_stalls": report.counters["worker_stalls"],
            "completed": report.counters["completed"],
            "identical": artifacts_equal(base_dir, fault_dir),
        }


def test_daemon_serving(benchmark):
    sessions = build_runtime_fleet(n_apps=N_APPS, seed=0)

    def run():
        return {
            "sweep": [sweep_point(sessions, name, config)
                      for name, config in SWEEP],
            "equivalence": check_sequential_equivalence(sessions),
            "kill_resume": check_kill_resume(sessions),
            "worker_faults": check_worker_faults(sessions),
        }

    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        ["Point", "Offered", "Decorated", "Degraded", "Shed", "Shed rate",
         "p95 react ms", "Occupancy"],
        [[row["point"], row["offered"], row["decorated"], row["degraded"],
          row["shed"], f"{row['shed_rate']:.2f}",
          "-" if row["reaction_p95_ms"] is None
          else f"{row['reaction_p95_ms']:.0f}",
          f"{row['mean_batch_occupancy']:.2f}"]
         for row in payload["sweep"]],
        title=f"Daemon offered-load sweep ({N_APPS} apps, ct={CT_MS:.0f}ms)",
    )

    light, moderate, overload = payload["sweep"]
    # In-capacity points serve everything decorated.
    assert light["shed"] == 0 and light["degraded"] == 0
    assert moderate["shed"] == 0 and moderate["degraded"] == 0
    # Overload sheds and degrades instead of hanging.
    assert overload["shed"] > 0, "overload point shed nothing"
    assert overload["degraded"] > 0, "overload point degraded nothing"
    # Scheduling leaves no fingerprint on the artifacts.
    assert all(payload["equivalence"].values()), payload["equivalence"]
    # Crash-safe resume reproduces the uninterrupted bytes.
    assert payload["kill_resume"]["identical"]
    assert payload["kill_resume"]["resumed_sessions"] >= 1
    # Worker faults fired and stayed bit-inert.
    assert payload["worker_faults"]["worker_crashes"] >= 1
    assert payload["worker_faults"]["completed"] == N_APPS
    assert payload["worker_faults"]["identical"]

    out = {
        "manifest": build_manifest(
            "runtime-fleet-v1", 0,
            {"n_apps": N_APPS, "ct_ms": CT_MS,
             "sweep": [{"point": name, **config.to_dict()}
                       for name, config in SWEEP]}),
        "benchmark": "daemon",
        "n_apps": N_APPS,
        "ct_ms": CT_MS,
        "fleet_seed": 0,
        **payload,
    }
    OUT_PATH.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT_PATH}")
