"""Chaos benchmark — the serving path under injected faults.

Not a paper table: this sweeps the fault-injection substrate
(:mod:`repro.android.faults`) across screenshot failures, OS rate
limiting, event chaos, overlay revocations and detector crashes/latency
spikes, and measures what the resilience layer
(:mod:`repro.core.resilience`) preserves — flagged-AUI recall and
perf overhead per fault plan, plus the retry/breaker/fallback counter
totals that show WHICH mechanism absorbed each fault class.

Two hard guarantees are asserted:

- **zero-fault parity**: the all-rates-zero plan (run through the
  parallel runner, on ``FaultyDevice``) is bit-identical to today's
  fault-free sequential pipeline — the resilience layer is provably
  inert when nothing fails;
- **no uncaught exceptions under chaos**: every plan completes the
  fleet, with breaker opens and heuristic fallbacks observed where the
  plan makes them reachable.

Results land in ``BENCH_chaos.json`` at the repo root.  The fleet size
is small by default (CI smoke); override with ``DARPA_CHAOS_APPS``.
"""

import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.android.faults import FaultPlan
from repro.bench import (
    build_runtime_fleet,
    print_table,
    run_darpa_over_fleet,
    run_darpa_over_fleet_parallel,
)

N_APPS = int(os.environ.get("DARPA_CHAOS_APPS", "12"))
CT_MS = 200.0
OUT_PATH = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"

#: Detector faults need a breaker that can realistically trip at these
#: rates (threshold 2) and a watchdog budget the injected latency
#: spikes overrun (base 100ms + spike 400ms > 250ms deadline).
DETECTOR_KWARGS = {"breaker_failure_threshold": 2, "deadline_ms": 250.0}

PLANS = [
    ("no faults", FaultPlan(), {}),
    ("screenshot 10%", FaultPlan(screenshot_failure_rate=0.1), {}),
    ("screenshot 20%", FaultPlan(screenshot_failure_rate=0.2), {}),
    ("screenshot 40% + throttle",
     FaultPlan(screenshot_failure_rate=0.4,
               screenshot_min_interval_ms=150.0), {}),
    ("event chaos",
     FaultPlan(event_drop_rate=0.1, event_duplicate_rate=0.1,
               event_storm_rate=0.05), {}),
    ("detector crash 10% + spikes",
     FaultPlan(detector_failure_rate=0.1, detector_spike_rate=0.25),
     DETECTOR_KWARGS),
    ("full chaos",
     FaultPlan(screenshot_failure_rate=0.2,
               screenshot_min_interval_ms=150.0,
               event_drop_rate=0.1, event_duplicate_rate=0.1,
               event_storm_rate=0.05, overlay_rejection_rate=0.1,
               detector_failure_rate=0.1, detector_spike_rate=0.25),
     DETECTOR_KWARGS),
]

RESILIENCE_KEYS = ("screenshot_failures", "retries", "detector_failures",
                   "breaker_opens", "fallback_detections", "deadline_skips",
                   "overlay_rejections")


def result_key(result):
    """Everything a row is derived from (injector counts excluded: the
    fault-free baseline has no injector at all)."""
    return (
        result.package,
        result.events_total,
        result.screens_analyzed,
        tuple(result.screen_verdicts),
        result.auis_shown,
        result.auis_flagged,
        result.perf.as_row(),
        tuple(sorted(result.perf.counts.items())),
        tuple(sorted(result.resilience.items())),
    )


def summarize(name, plan, kwargs, results):
    totals = {k: sum(r.resilience.get(k, 0) for r in results)
              for k in RESILIENCE_KEYS}
    injected = {}
    for r in results:
        for k, v in r.injected.items():
            injected[k] = injected.get(k, 0) + v
    shown = sum(r.auis_shown for r in results)
    flagged = sum(r.auis_flagged for r in results)
    return {
        "plan": name,
        "fault_rates": asdict(plan),
        "darpa_kwargs": kwargs,
        "auis_shown": shown,
        "auis_flagged": flagged,
        "recall": (flagged / shown) if shown else None,
        "screens_analyzed": sum(r.screens_analyzed for r in results),
        "cpu_pct": float(np.mean([r.perf.cpu_pct for r in results])),
        "power_mw": float(np.mean([r.perf.power_mw for r in results])),
        "resilience": totals,
        "injected": injected,
    }


def test_chaos_sweep(benchmark):
    sessions = build_runtime_fleet(n_apps=N_APPS, seed=0)

    def run():
        # Today's pipeline: plain Device, no fault plan, sequential.
        baseline = run_darpa_over_fleet(sessions, "oracle", ct_ms=CT_MS,
                                        mode="full")
        rows = []
        by_name = {}
        for name, plan, kwargs in PLANS:
            results = run_darpa_over_fleet_parallel(
                sessions, "oracle", ct_ms=CT_MS, mode="full",
                fault_plan=plan, darpa_kwargs=kwargs or None)
            by_name[name] = results
            rows.append(summarize(name, plan, kwargs, results))
        identical = ([result_key(r) for r in by_name["no faults"]]
                     == [result_key(r) for r in baseline])
        return baseline, rows, by_name, identical

    baseline, rows, by_name, identical = benchmark.pedantic(
        run, rounds=1, iterations=1)

    print_table(
        ["Plan", "Recall", "CPU %", "Power mW", "Retries", "Breaker opens",
         "Fallbacks", "Deadline skips"],
        [[r["plan"], f"{r['recall']:.3f}", f"{r['cpu_pct']:.1f}",
          f"{r['power_mw']:.1f}", r["resilience"]["retries"],
          r["resilience"]["breaker_opens"],
          r["resilience"]["fallback_detections"],
          r["resilience"]["deadline_skips"]] for r in rows],
        title=f"Chaos sweep ({N_APPS} apps, ct={CT_MS:.0f}ms)",
    )

    # Zero-fault parity: the resilience layer must be bit-inert.
    assert identical, "null fault plan diverged from the fault-free pipeline"
    zero = rows[0]
    assert all(v == 0 for v in zero["resilience"].values())
    assert all(v == 0 for v in zero["injected"].values())

    # Acceptance sweep (screenshot failure 0.2 / detector crash 0.1):
    # the fleet completes with zero uncaught exceptions (we got here),
    # failures are retried, the breaker trips, and the heuristic serves
    # screens while the CNN is out.
    shot20 = next(r for r in rows if r["plan"] == "screenshot 20%")
    assert shot20["resilience"]["screenshot_failures"] > 0
    assert shot20["resilience"]["retries"] > 0
    crash = next(r for r in rows if r["plan"] == "detector crash 10% + spikes")
    assert crash["resilience"]["detector_failures"] > 0
    assert crash["resilience"]["breaker_opens"] > 0
    assert crash["resilience"]["fallback_detections"] > 0
    assert crash["resilience"]["deadline_skips"] > 0
    full = next(r for r in rows if r["plan"] == "full chaos")
    assert full["resilience"]["breaker_opens"] > 0
    assert full["resilience"]["fallback_detections"] > 0

    # Graceful degradation, not collapse: every plan still flags AUIs,
    # and the fault-free plan is at least as good as any chaotic one.
    for r in rows:
        assert r["recall"] > 0, f"{r['plan']} flagged nothing"
        assert r["recall"] <= zero["recall"] + 1e-9

    from repro.bench.provenance import build_manifest
    payload = {
        "manifest": build_manifest(
            "runtime-fleet-v1", 0, {"n_apps": N_APPS, "ct_ms": CT_MS}),
        "benchmark": "chaos",
        "n_apps": N_APPS,
        "ct_ms": CT_MS,
        "fleet_seed": 0,
        "zero_fault_bit_identical": identical,
        "baseline_recall": zero["recall"],
        "rows": rows,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
