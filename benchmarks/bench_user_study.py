"""Section III-B — the user study (Findings 1-3).

Paper aggregates over 165 valid responses: 94.5% find the examples
misleading; 77.0% often misclick (20.6% occasionally, 2.4% never);
accessibility ratings AGO 7.49 vs UPO 4.38; 83.0% feel bothered; 76.8%
of the 112 foreign-app users see more AUIs in China; 72.7% rate the UPO
at least equally important; demand rating 7.64 with 48 nines-or-above;
a majority prefer highlighting.
"""

from repro.bench import print_table
from repro.userstudy import SurveyInstrument, analyze_responses, simulate_responses


def test_user_study_findings(benchmark):
    def run():
        instrument = SurveyInstrument()
        for response in simulate_responses(seed=0):
            instrument.submit(response)
        return analyze_responses(instrument.responses)

    f = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["Valid responses", f.n, 165],
        ["Q1: examples are misleading", f"{f.frac_misleading:.1%}", "94.5%"],
        ["Q2: often misclick", f"{f.frac_often_misclick:.1%}", "77.0%"],
        ["Q2: occasionally", f"{f.frac_occasional_misclick:.1%}", "20.6%"],
        ["Q2: never", f"{f.frac_never_misclick:.1%}", "2.4%"],
        ["Q3-5: AGO accessibility (mean)", f"{f.ago_mean_rating:.2f}", 7.49],
        ["Q3-5: UPO accessibility (mean)", f"{f.upo_mean_rating:.2f}", 4.38],
        ["Q7: bothered, want quick exit", f"{f.frac_bothered:.1%}", "83.0%"],
        ["Q8: more AUIs in China", f"{f.frac_more_auis_in_china:.1%}", "76.8%"],
        ["Q9: UPO at least equally important", f"{f.frac_upo_at_least_equal:.1%}", "72.7%"],
        ["Q10: demand for a solution (mean)", f"{f.demand_mean_rating:.2f}", 7.64],
        ["Q10: ratings of 9+", f.n_demand_nine_plus, 48],
        ["Q12: prefer highlighting", f"{f.frac_prefer_highlight:.1%}", ">50%"],
    ]
    print_table(["Aggregate", "Measured", "Paper"], rows,
                title="Section III-B: user study aggregates")

    assert f.finding1_auis_misleading, "Finding 1 must hold"
    assert f.finding2_negative_usability_impact, "Finding 2 must hold"
    assert f.finding3_users_expect_solutions, "Finding 3 must hold"
    assert abs(f.ago_mean_rating - 7.49) < 0.01
    assert abs(f.upo_mean_rating - 4.38) < 0.01
